"""Tests for the discovery-under-load experiment family."""

import pytest

from repro.cli import main
from repro.experiments.load import (
    DEFAULT_LOADS,
    TC_MAPPINGS,
    LoadResult,
    mapping_label,
    render_load,
    run_load_experiment,
    summarize_load,
    sweep_load,
)
from repro.fabric.params import DEFAULT_PARAMS
from repro.manager import PARALLEL, SERIAL_PACKET
from repro.topology import make_mesh
from repro.workloads.traffic import TrafficSpec


class TestMappingLabel:
    def test_default_params_are_bvc(self):
        assert mapping_label(DEFAULT_PARAMS) == "bvc"

    def test_known_and_custom(self):
        from dataclasses import replace
        assert mapping_label(
            replace(DEFAULT_PARAMS, tc_vc_map=TC_MAPPINGS["mixed"])
        ) == "mixed"
        assert mapping_label(
            replace(DEFAULT_PARAMS, tc_vc_map=(0, 1, 0, 1, 0, 1, 0, 1))
        ) == "custom"


class TestRunLoadExperiment:
    def test_loaded_run_measures_everything(self):
        result = run_load_experiment(
            make_mesh(3, 3),
            traffic=TrafficSpec(load=0.6, packet_bytes=256),
            seed=1,
        )
        assert result.offered_load == 0.6
        assert result.mapping == "bvc"
        assert result.change == "remove_switch"
        assert result.discovery_time > 0
        assert result.detection_latency is not None
        assert result.detection_latency > 0
        assert result.assimilation_time > 0
        assert result.packets_injected > 0
        assert result.packets_delivered > 0
        assert result.delivered_bytes_per_s > 0
        assert result.mean_delivery_latency > 0
        assert result.database_correct

    def test_idle_run_reports_no_traffic(self):
        result = run_load_experiment(make_mesh(2, 2), seed=0)
        assert result.offered_load == 0.0
        assert result.packets_injected == 0
        assert result.delivered_bytes_per_s == 0.0
        assert result.mean_delivery_latency is None
        assert result.database_correct

    def test_asdict_is_json_shaped(self):
        import json
        result = run_load_experiment(make_mesh(2, 2), seed=0)
        doc = json.loads(json.dumps(result.asdict()))
        assert doc["mapping"] == "bvc"
        assert doc["changed_device"] == result.changed_device


class TestSweepLoad:
    def test_sweep_shape_and_order(self):
        results = sweep_load(
            make_mesh(3, 3), loads=(0.0, 0.6),
            mappings=("bvc", "mixed"), workers=2,
        )
        assert len(results) == 4
        # Submission order: mapping-major, then load.
        assert [(r.mapping, r.offered_load) for r in results] == [
            ("bvc", 0.0), ("bvc", 0.6), ("mixed", 0.0), ("mixed", 0.6),
        ]
        assert all(r.database_correct for r in results)
        # Same seed => same victim everywhere: only traffic varies.
        assert len({r.changed_device for r in results}) == 1

    def test_parallel_matches_serial(self):
        kwargs = dict(loads=(0.0, 0.5), mappings=("bvc",))
        serial = sweep_load(make_mesh(2, 2), workers=1, **kwargs)
        parallel = sweep_load(make_mesh(2, 2), workers=2, **kwargs)
        assert [r.asdict() for r in serial] == \
            [r.asdict() for r in parallel]

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ValueError, match="unknown TC mapping"):
            sweep_load(make_mesh(2, 2), mappings=("warp",))


class TestSummarizeLoad:
    @staticmethod
    def _result(mapping, load, t_disc, t_detect):
        return LoadResult(
            topology="t", family="mesh", algorithm=PARALLEL, seed=0,
            offered_load=load, mapping=mapping, arrival="poisson",
            pattern="uniform", change="remove_switch",
            changed_device="sw", discovery_time=t_disc,
            detection_latency=t_detect, assimilation_time=1e-3,
            packets_injected=0, packets_delivered=0,
            delivered_bytes_per_s=0.0, mean_delivery_latency=None,
            database_correct=True,
        )

    def test_inflation_against_idle_baseline(self):
        rows = summarize_load([
            self._result("bvc", 0.0, 2e-3, 1e-5),
            self._result("bvc", 0.9, 3e-3, 2e-5),
        ])
        assert len(rows) == 2
        loaded = [r for r in rows if r["offered_load"] == 0.9][0]
        assert loaded["discovery_inflation"] == pytest.approx(1.5)
        assert loaded["detection_inflation"] == pytest.approx(2.0)
        idle = [r for r in rows if r["offered_load"] == 0.0][0]
        assert idle["discovery_inflation"] == pytest.approx(1.0)

    def test_no_baseline_means_no_inflation(self):
        rows = summarize_load([self._result("mixed", 0.9, 3e-3, 2e-5)])
        assert rows[0]["discovery_inflation"] is None
        assert rows[0]["detection_inflation"] is None

    def test_buckets_are_per_mapping(self):
        rows = summarize_load([
            self._result("bvc", 0.0, 2e-3, 1e-5),
            self._result("mixed", 0.0, 4e-3, 2e-5),
            self._result("mixed", 0.9, 8e-3, 6e-5),
        ])
        mixed = [r for r in rows
                 if r["mapping"] == "mixed" and r["offered_load"] == 0.9]
        assert mixed[0]["discovery_inflation"] == pytest.approx(2.0)
        assert mixed[0]["detection_inflation"] == pytest.approx(3.0)

    def test_render_table(self):
        rows = summarize_load([
            self._result("bvc", 0.0, 2e-3, 1e-5),
            self._result("bvc", 0.9, 3e-3, 2e-5),
        ])
        table = render_load(rows, title="load sweep")
        assert "load sweep" in table
        assert "t_detect infl" in table
        assert "90%" in table
        assert "1.5x" in table


class TestLoadCli:
    def test_load_sweep_exits_zero(self, capsys):
        code = main(["load", "--topology", "3x3 mesh",
                     "--load", "0", "--load", "0.6", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bvc" in out
        assert "mixed" in out
        assert "60%" in out

    def test_single_mapping_and_algorithm(self, capsys):
        code = main(["load", "--topology", "mesh9",
                     "--load", "0", "--load", "0.5",
                     "--mapping", "bvc",
                     "--algorithm", SERIAL_PACKET])
        assert code == 0
        out = capsys.readouterr().out
        assert "serial_packet" in out
        assert "mixed" not in out

    def test_default_loads_are_documented(self):
        assert 0.0 in DEFAULT_LOADS
