"""Tests for the unified Scenario API."""

import dataclasses

import pytest

from repro.experiments.executor import CHANGE, CHURN, Job, run_many
from repro.experiments.scenario import Scenario, run_scenario
from repro.fabric.params import DEFAULT_PARAMS, FabricParams
from repro.manager.timing import ProcessingTimeModel
from repro.workloads.traffic import TrafficSpec


def _full_scenario() -> Scenario:
    """A scenario with every optional field populated."""
    return Scenario(
        kind="churn",
        topology="mesh9",
        algorithm="serial_device",
        manager="partial",
        seed=3,
        change=None,
        timing=ProcessingTimeModel(fm_factor=2.0).to_dict(),
        params=dataclasses.replace(
            DEFAULT_PARAMS, bit_error_rate=1e-6
        ).to_dict(),
        max_retries=5,
        faults=2,
        mean_interval=1e-3,
        verify_sample=1,
        max_discovery_restarts=4,
        restart_backoff=1e-4,
        fm_options={"arrival_clears_timeout": True},
    )


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Scenario(kind="frobnicate")

    def test_unknown_manager_rejected(self):
        with pytest.raises(ValueError, match="manager"):
            Scenario(manager="imaginary")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            Scenario(algorithm="quantum")

    def test_unknown_change_kind_rejected(self):
        with pytest.raises(ValueError, match="change"):
            Scenario(kind="change", change="explode_switch")

    def test_bad_params_document_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown FabricParams"):
            Scenario(params={"bit_eror_rate": 1e-6})  # typo

    def test_model_objects_normalized_to_documents(self):
        scenario = Scenario(
            params=dataclasses.replace(DEFAULT_PARAMS,
                                       bit_error_rate=1e-6),
            timing=ProcessingTimeModel(fm_factor=2.0),
        )
        assert isinstance(scenario.params, dict)
        assert isinstance(scenario.timing, dict)
        assert scenario.fabric_params().bit_error_rate == 1e-6
        assert scenario.timing_model().fm_factor == 2.0

    def test_topology_alias_resolves(self):
        assert Scenario(topology="mesh9").spec().name == "3x3 mesh"


class TestSerialization:
    def test_round_trip_is_lossless(self):
        scenario = _full_scenario()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_round_trip_of_defaults_is_lossless(self):
        scenario = Scenario()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_to_dict_always_emits_every_field(self):
        document = Scenario().to_dict()
        expected = {f.name for f in dataclasses.fields(Scenario)}
        assert set(document) == expected | {"schema"}

    def test_unknown_key_rejected(self):
        document = Scenario().to_dict()
        document["faultz"] = 3
        with pytest.raises(ValueError, match="unknown Scenario"):
            Scenario.from_dict(document)

    def test_wrong_schema_rejected(self):
        document = Scenario().to_dict()
        document["schema"] = "repro/scenario/v0"
        with pytest.raises(ValueError, match="schema"):
            Scenario.from_dict(document)

    def test_fabric_params_round_trip_is_lossless(self):
        params = dataclasses.replace(DEFAULT_PARAMS, bit_error_rate=2e-6,
                                     error_seed=9)
        assert FabricParams.from_dict(params.to_dict()) == params

    def test_fabric_params_unknown_key_rejected(self):
        document = DEFAULT_PARAMS.to_dict()
        document["bandwith"] = 1.0  # typo
        with pytest.raises(ValueError, match="unknown FabricParams"):
            FabricParams.from_dict(document)


class TestJobs:
    def test_job_carries_scenario_and_round_trips(self):
        scenario = _full_scenario()
        job = scenario.job(tag="t")
        assert job.kind == CHURN
        assert job.tag == "t"
        assert Scenario.from_job(job) == scenario

    def test_legacy_job_without_scenario_maps_field_by_field(self):
        job = Job(kind=CHANGE, spec={"name": "x"}, algorithm="parallel",
                  seed=4, change="add_switch",
                  options={"manager": "partial"})
        scenario = Scenario.from_job(job)
        assert scenario.kind == "change"
        assert scenario.change == "add_switch"
        assert scenario.manager == "partial"
        assert scenario.seed == 4
        assert scenario.topology == {"name": "x"}

    def test_unknown_job_kind_rejected(self):
        job = Job(kind="teleport", spec={"name": "x"}, algorithm="parallel")
        with pytest.raises(ValueError, match="job kind"):
            Scenario.from_job(job)

    def test_executor_routes_through_scenario(self):
        scenario = Scenario(kind="change", topology="mesh9", seed=0)
        direct = scenario.run().asdict()
        via_executor = run_many([scenario.job()]).raise_if_failed()
        assert via_executor.results[0].asdict() == direct


class TestShimsRemoved:
    """The PR 5 deprecation shims are gone; Scenario is the only API."""

    def test_run_change_experiment_removed(self):
        import repro
        import repro.experiments
        import repro.experiments.runner as runner
        assert not hasattr(runner, "run_change_experiment")
        assert not hasattr(repro.experiments, "run_change_experiment")
        assert not hasattr(repro, "run_change_experiment")

    def test_job_shims_removed(self):
        import repro.experiments
        import repro.experiments.executor as executor
        for name in ("reliability_job", "churn_job"):
            assert not hasattr(executor, name)
            assert not hasattr(repro.experiments, name)


class TestTrafficField:
    def test_traffic_spec_object_normalized_to_document(self):
        scenario = Scenario(kind="load", traffic=TrafficSpec(load=0.4))
        assert isinstance(scenario.traffic, dict)
        assert scenario.traffic_spec() == TrafficSpec(load=0.4)

    def test_traffic_round_trip_is_lossless(self):
        import json
        scenario = Scenario(
            kind="load", topology="mesh9",
            traffic=TrafficSpec(load=0.7, arrival="bursty",
                                pattern="hotspot").to_dict(),
        )
        wire = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(wire) == scenario

    def test_bad_traffic_document_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown TrafficSpec"):
            Scenario(kind="load", traffic={"laod": 0.5})  # typo
        with pytest.raises(ValueError, match="arrival"):
            Scenario(kind="load", traffic={"load": 0.5,
                                           "arrival": "psychic"})

    def test_idle_scenario_has_no_traffic_spec(self):
        assert Scenario(kind="load").traffic_spec() is None


class TestRunScenario:
    def test_discover_returns_stats_with_extras(self):
        stats = run_scenario(Scenario(kind="discover", topology="mesh9"))
        assert stats.devices_found == 18
        assert stats.mean_fm_time > 0
        assert stats.database_correct is True

    def test_change_defaults_to_remove_switch(self):
        result = Scenario(kind="change", topology="mesh9", seed=0).run()
        assert result.change == "remove_switch"
        assert result.database_correct


class TestDocumentIsolation:
    """``to_dict``/``from_dict`` must never alias the frozen scenario."""

    def test_mutating_rendered_document_leaves_scenario_intact(self):
        scenario = _full_scenario()
        before = scenario.to_dict()
        document = scenario.to_dict()
        document["params"]["bit_error_rate"] = 0.5
        document["fm_options"]["extra"] = True
        document["timing"]["fm_base"]["parallel"] = 1.0
        assert scenario.to_dict() == before

    def test_mutating_constructor_input_leaves_scenario_intact(self):
        from repro.experiments.io import spec_to_dict
        from repro.topology import make_irregular
        topology = spec_to_dict(make_irregular(4, extra_links=1,
                                               switch_ports=8, seed=2))
        options = {"arrival_clears_timeout": True}
        scenario = Scenario(kind="discover", topology=topology,
                            fm_options=options)
        before = scenario.to_dict()
        topology["switches"].append(["rogue", 4])
        options["rogue"] = True
        assert scenario.to_dict() == before

    def test_job_spec_does_not_alias_scenario_topology(self):
        from repro.experiments.io import spec_to_dict
        from repro.topology import make_irregular
        scenario = Scenario(
            kind="discover",
            topology=spec_to_dict(make_irregular(4, extra_links=0,
                                                 switch_ports=8, seed=1)),
        )
        job = scenario.job()
        job.spec["switches"].append(["rogue", 4])
        assert "rogue" not in str(scenario.topology)


class TestJsonNormalForm:
    def test_tuples_normalize_to_lists_on_construction(self):
        from repro.experiments.io import spec_to_dict
        from repro.topology import make_irregular
        document = spec_to_dict(make_irregular(4, extra_links=1,
                                               switch_ports=8, seed=2))
        tupled = dict(document)
        tupled["switches"] = tuple(tuple(s) for s in document["switches"])
        tupled["links"] = tuple(tuple(l) for l in document["links"])
        assert Scenario(topology=tupled) == Scenario(topology=document)

    def test_json_round_trip_equals_original(self):
        import json
        for scenario in (_full_scenario(), Scenario()):
            wire = json.loads(json.dumps(scenario.to_dict()))
            assert Scenario.from_dict(wire) == scenario

    def test_embedded_spec_json_round_trip_equals_original(self):
        import json
        from repro.experiments.io import spec_to_dict
        from repro.topology import make_irregular
        scenario = Scenario(
            kind="change", change="add_switch",
            topology=spec_to_dict(make_irregular(5, extra_links=2,
                                                 switch_ports=8, seed=4)),
        )
        wire = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(wire) == scenario


class TestEagerTimingValidation:
    def test_missing_timing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing ProcessingTime"):
            Scenario(timing={"fm_factor": 2.0})

    def test_unknown_timing_fields_rejected(self):
        document = ProcessingTimeModel().to_dict()
        document["fm_fator"] = 2.0  # the misspelling that must not pass
        with pytest.raises(ValueError, match="unknown ProcessingTime"):
            Scenario(timing=document)

    def test_invalid_timing_values_rejected(self):
        document = ProcessingTimeModel().to_dict()
        document["fm_factor"] = -1.0
        with pytest.raises(ValueError, match="positive"):
            Scenario(timing=document)

    def test_timing_model_object_accepted_and_normalized(self):
        model = ProcessingTimeModel(fm_factor=2.0)
        scenario = Scenario(timing=model)
        assert scenario.timing == model.to_dict()
        assert scenario.timing_model() == model


class TestScenarioProperties:
    """Property-style round trips over generated scenarios."""

    def test_sampled_scenarios_round_trip(self):
        import json
        from repro.experiments.fuzz import sample_scenario
        for index in range(60):
            scenario = sample_scenario(11, index)
            document = scenario.to_dict()
            wire = json.loads(json.dumps(document))
            rebuilt = Scenario.from_dict(wire)
            assert rebuilt == scenario
            assert rebuilt.to_dict() == document

    def test_hypothesis_round_trip(self):
        import json
        from hypothesis import given, settings, strategies as st
        from repro.experiments.scenario import CHANGE_KINDS, KINDS
        from repro.manager.timing import ALGORITHMS

        @settings(max_examples=40, deadline=None)
        @given(
            kind=st.sampled_from(KINDS),
            topology=st.sampled_from(("mesh9", "torus9", "fattree4-2")),
            algorithm=st.sampled_from(ALGORITHMS),
            manager=st.sampled_from(("full", "partial")),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            change=st.none() | st.sampled_from(CHANGE_KINDS),
            faults=st.none() | st.integers(min_value=1, max_value=8),
            mean_interval=st.none() | st.sampled_from((1e-3, 2e-3)),
            fm_factor=st.sampled_from((0.5, 1.0, 4.0)),
            with_timing=st.booleans(),
        )
        def check(kind, topology, algorithm, manager, seed, change,
                  faults, mean_interval, fm_factor, with_timing):
            timing = (ProcessingTimeModel(fm_factor=fm_factor)
                      if with_timing else None)
            scenario = Scenario(
                kind=kind, topology=topology, algorithm=algorithm,
                manager=manager, seed=seed, change=change,
                faults=faults, mean_interval=mean_interval,
                timing=timing,
            )
            wire = json.loads(json.dumps(scenario.to_dict()))
            assert Scenario.from_dict(wire) == scenario

        check()


class TestFmOptionsRouting:
    """fm_options must reach the FM constructor for *every* kind."""

    def test_reliability_and_churn_reject_bogus_fm_option(self):
        for kind in ("reliability", "churn"):
            scenario = Scenario(kind=kind, topology="4-port 2-tree",
                                faults=1 if kind == "churn" else None,
                                fm_options={"bogus_option": 1})
            with pytest.raises(TypeError, match="bogus_option"):
                scenario.run()

    def test_reliability_accepts_real_fm_option(self):
        scenario = Scenario(kind="reliability", topology="4-port 2-tree",
                            fm_options={"arrival_clears_timeout": True})
        result = scenario.run()
        assert result.database_correct
