"""Tests for the process-parallel sweep executor."""

import pytest

import repro.experiments.executor as executor_module
from repro.experiments.executor import (
    Job,
    SweepError,
    change_job,
    initial_job,
    run_many,
    run_sweep,
)
from repro.experiments.sweep import sweep_change_experiments, sweep_fm_factor
from repro.manager.timing import ProcessingTimeModel
from repro.topology import make_mesh, make_torus


def _quick_jobs():
    """A small but heterogeneous suite: both kinds, several algorithms,
    seeds, changes, and a non-default timing model."""
    mesh, torus = make_mesh(2, 2), make_torus(3, 3)
    timing = ProcessingTimeModel(fm_factor=2.0)
    return [
        change_job(mesh, "parallel", seed=0, change="remove_switch"),
        change_job(mesh, "serial_device", seed=1, change="add_switch"),
        change_job(torus, "parallel", seed=2, change="remove_switch",
                   timing=timing),
        initial_job(mesh, "serial_packet"),
        initial_job(torus, "parallel", timing=timing),
    ]


def _fingerprint(result):
    """Comparable rendering of either job kind's result."""
    if hasattr(result, "asdict"):
        return result.asdict()
    raise AssertionError(f"unexpected result {result!r}")


class TestDeterminism:
    def test_parallel_identical_to_serial(self):
        jobs = _quick_jobs()
        serial = run_many(jobs, workers=1)
        parallel = run_many(jobs, workers=3)
        assert not serial.failures and not parallel.failures
        assert parallel.workers > 1  # the pool really was used
        for a, b in zip(serial.results, parallel.results):
            assert _fingerprint(a) == _fingerprint(b)

    def test_results_stay_in_submission_order(self):
        jobs = _quick_jobs()
        report = run_many(jobs, workers=2)
        for job, result in zip(jobs, report.results):
            info = _fingerprint(result)
            assert info["algorithm"] == job.algorithm
            if job.kind == "change":
                assert info["seed"] == job.seed
                assert info["change"] == job.change

    def test_sweep_jobs_parameter_is_transparent(self):
        topologies = [make_mesh(2, 2)]
        serial = sweep_change_experiments(
            topologies=topologies, algorithms=("parallel",), seeds=range(2),
        )
        parallel = sweep_change_experiments(
            topologies=topologies, algorithms=("parallel",), seeds=range(2),
            jobs=2,
        )
        assert [r.asdict() for r in serial] == [r.asdict() for r in parallel]

    def test_factor_sweep_jobs_parameter_is_transparent(self):
        spec = make_mesh(2, 2)
        serial = sweep_fm_factor(spec, factors=(0.5, 2.0),
                                 algorithms=("parallel",))
        parallel = sweep_fm_factor(spec, factors=(0.5, 2.0),
                                   algorithms=("parallel",), jobs=2)
        assert serial == parallel


class TestFailureHandling:
    def test_failure_carries_job_and_spares_the_rest(self):
        good = change_job(make_mesh(2, 2), "parallel", seed=0)
        bad = Job(kind="change", spec=good.spec, algorithm="parallel",
                  seed=0, change="explode_switch")
        report = run_many([good, bad, good], workers=2)
        assert report.results[0] is not None
        assert report.results[2] is not None
        assert report.results[1] is None
        (failure,) = report.failures
        assert failure.index == 1
        assert failure.job is bad or failure.job == bad
        assert "explode_switch" in failure.error
        assert "Traceback" in failure.traceback

    def test_raise_if_failed_names_the_job(self):
        bad = Job(kind="bogus", spec=change_job(
            make_mesh(2, 2), "parallel").spec, algorithm="parallel")
        with pytest.raises(SweepError, match="bogus"):
            run_many([bad], workers=1).raise_if_failed()

    def test_run_sweep_raises_on_failure(self):
        bad = Job(kind="change", spec=change_job(
            make_mesh(2, 2), "parallel").spec, algorithm="parallel",
            change="explode_switch")
        with pytest.raises(SweepError):
            run_sweep([bad, change_job(make_mesh(2, 2), "parallel")],
                      workers=2)


class TestFallbacks:
    def test_workers_one_runs_in_process(self, monkeypatch):
        def no_pool():
            raise AssertionError("workers=1 must not build a pool")

        monkeypatch.setattr(executor_module, "_pool_context", no_pool)
        report = run_many([change_job(make_mesh(2, 2), "parallel")],
                          workers=1)
        assert not report.failures
        assert report.workers == 1

    def test_degrades_when_no_start_method(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_pool_context", lambda: None)
        jobs = [change_job(make_mesh(2, 2), "parallel", seed=s)
                for s in range(2)]
        report = run_many(jobs, workers=4)
        assert report.workers == 1
        assert not report.failures
        baseline = run_many(jobs, workers=1)
        for a, b in zip(baseline.results, report.results):
            assert _fingerprint(a) == _fingerprint(b)

    def test_workers_clamped_to_job_count(self):
        report = run_many([change_job(make_mesh(2, 2), "parallel")],
                          workers=16)
        assert report.workers == 1
        assert not report.failures


class TestReporting:
    def test_progress_callback_and_summary(self):
        seen = []
        jobs = [change_job(make_mesh(2, 2), "parallel", seed=s)
                for s in range(2)]
        report = run_many(jobs, workers=1,
                          progress=lambda done, job, failure, duration:
                          seen.append((done, job.describe(), failure)))
        assert [done for done, _, _ in seen] == [1, 2]
        assert all(failure is None for _, _, failure in seen)
        summary = report.summary()
        assert "2 runs" in summary and "speedup" in summary
        assert report.wall_time > 0
        assert report.run_time > 0

    def test_progress_true_writes_eta_lines(self):
        import io

        stream = io.StringIO()
        run_many([change_job(make_mesh(2, 2), "parallel")],
                 workers=1, progress=True, stream=stream)
        text = stream.getvalue()
        assert "[1/1]" in text and "eta" in text
        assert "runs (0 failed)" in text

    def test_job_describe_mentions_identity(self):
        job = change_job(make_mesh(2, 2), "serial_device", seed=7,
                         change="add_switch")
        text = job.describe()
        assert "2x2 mesh" in text
        assert "serial_device" in text
        assert "seed=7" in text
        assert "add_switch" in text
