"""Tests for the discovery-under-loss reliability sweep."""

from dataclasses import replace

import pytest

from repro.experiments.reliability import (
    DEFAULT_BIT_ERROR_RATES,
    ReliabilityResult,
    render_reliability,
    run_reliability_experiment,
    summarize_reliability,
    sweep_reliability,
)
from repro.fabric.params import DEFAULT_PARAMS
from repro.topology.table1 import table1_topology

MESH = table1_topology("3x3 mesh")
RATES = (0.0, 5e-5, 1e-4)


class TestSingleRun:
    def test_perfect_channel_matches_golden_no_recovery(self):
        result = run_reliability_experiment(MESH, "parallel")
        assert result.database_correct
        assert result.retries == 0
        assert result.timeouts == 0
        assert result.crc_drops == 0
        assert result.lost_packets == 0
        assert result.bit_error_rate == 0.0

    def test_lossy_run_recovers_via_retries(self):
        params = replace(DEFAULT_PARAMS, bit_error_rate=1e-4)
        result = run_reliability_experiment(
            MESH, "parallel", params=params, seed=0
        )
        assert result.database_correct
        assert result.crc_drops > 0
        assert result.retries > 0
        assert result.devices_found == MESH.total_devices

    def test_asdict_round_trip(self):
        result = run_reliability_experiment(MESH, "parallel")
        info = result.asdict()
        assert ReliabilityResult(**info) == result


class TestSweep:
    @pytest.fixture(scope="class")
    def results(self):
        return sweep_reliability(
            MESH, bit_error_rates=RATES, algorithms=("parallel",),
        )

    def test_one_result_per_rate_in_submission_order(self, results):
        assert [r.bit_error_rate for r in results] == list(RATES)
        assert all(r.database_correct for r in results)

    def test_discovery_time_degrades_monotonically(self, results):
        times = [r.discovery_time for r in results]
        assert all(b >= a for a, b in zip(times, times[1:]))
        # And the lossiest point is strictly slower than the perfect
        # channel (the sweep must measure something).
        assert times[-1] > times[0]

    def test_parallel_workers_match_serial(self, results):
        fanned = sweep_reliability(
            MESH, bit_error_rates=RATES, algorithms=("parallel",),
            workers=2, progress=False,
        )
        assert fanned == results


class TestSummaryAndRendering:
    def _fake(self, algorithm, rate, time, correct=True):
        return ReliabilityResult(
            topology="t", family="mesh", algorithm=algorithm, seed=0,
            bit_error_rate=rate, packet_loss_rate=0.0, duplicate_rate=0.0,
            discovery_time=time, devices_found=5, requests_sent=10,
            retries=1, timeouts=0, stale_completions=0,
            duplicate_requests=0, crc_drops=2, lost_packets=0,
            replayed_packets=0, database_correct=correct,
        )

    def test_summarize_groups_and_averages(self):
        rows = summarize_reliability([
            self._fake("parallel", 1e-5, 2.0),
            self._fake("parallel", 1e-5, 4.0),
            self._fake("parallel", 0.0, 1.0),
            self._fake("serial", 0.0, 5.0, correct=False),
        ])
        assert [(r["algorithm"], r["bit_error_rate"]) for r in rows] == [
            ("parallel", 0.0), ("parallel", 1e-5), ("serial", 0.0),
        ]
        assert rows[1]["runs"] == 2
        assert rows[1]["mean_discovery_time"] == pytest.approx(3.0)
        assert rows[0]["all_correct"] is True
        assert rows[2]["all_correct"] is False

    def test_render_produces_table_with_title(self):
        rows = summarize_reliability([self._fake("parallel", 0.0, 1.0)])
        text = render_reliability(rows, title="Loss sweep")
        assert text.startswith("Loss sweep\n")
        assert "parallel" in text
        assert "CRC drops" in text

    def test_default_rates_start_at_perfect_channel(self):
        assert DEFAULT_BIT_ERROR_RATES[0] == 0.0
        assert list(DEFAULT_BIT_ERROR_RATES) == sorted(
            DEFAULT_BIT_ERROR_RATES
        )
