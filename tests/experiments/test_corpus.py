"""Regression-corpus replay: every checked-in entry must pass.

``tests/corpus/`` holds minimal scenarios the fuzzing lab archived —
seeded coverage entries plus shrunk reproducers of fixed bugs.  On a
clean tree each entry replays to a pass: converged, correct database,
clean audit.  A failure here means a regression resurrected an
archived bug.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.fuzz import (
    CORPUS_SCHEMA,
    corpus_filename,
    evaluate_scenario,
    iter_corpus,
    load_corpus_entry,
    render_corpus_entry,
)

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

ENTRIES = iter_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.name)
class TestCorpusEntry:
    def test_entry_is_well_formed(self, path):
        document, scenario = load_corpus_entry(path)
        assert document["schema"] == CORPUS_SCHEMA
        assert document["reason"]
        # The filename is the content address of the scenario ...
        assert path.name == corpus_filename(scenario)
        # ... and the bytes are the canonical rendering (so a manual
        # edit that drifts from normal form fails loudly here).
        assert path.read_text() == render_corpus_entry(document)
        # The embedded scenario survives a JSON round trip exactly.
        wire = json.loads(json.dumps(document["scenario"]))
        assert scenario.to_dict() == wire

    def test_entry_replays_clean(self, path):
        _, scenario = load_corpus_entry(path)
        verdict = evaluate_scenario(scenario)
        assert verdict is None, (
            f"{path.name} regressed: {verdict[0]} ({verdict[1]})"
        )
