"""Tests for the ASCII plot renderer."""

import pytest

from repro.experiments.ascii_plot import render_plot


def simple_series():
    return {
        "rising": [(0, 0.0), (10, 10.0)],
        "flat": [(0, 5.0), (10, 5.0)],
    }


class TestRenderPlot:
    def test_contains_title_axes_and_legend(self):
        text = render_plot("My plot", "x-things", "y-stuff",
                           simple_series())
        assert "My plot" in text
        assert "(x-things)" in text
        assert "y-stuff" in text
        assert "* rising" in text
        assert "+ flat" in text

    def test_extreme_points_land_in_corners(self):
        text = render_plot("t", "x", "y", {"s": [(0, 0.0), (10, 10.0)]},
                           width=20, height=10)
        rows = [line for line in text.splitlines() if "|" in line]
        # Max y (first grid row) has the marker at the right edge.
        assert rows[0].rstrip().endswith("*")
        # Min y (last grid row) has the marker right after the axis.
        assert rows[-1].split("|")[1][0] == "*"

    def test_flat_series_renders_single_row(self):
        text = render_plot("t", "x", "y", {"s": [(0, 3.0), (5, 3.0)]},
                           width=20, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        marked = [row for row in rows if "*" in row]
        assert len(marked) == 1

    def test_log_scale(self):
        text = render_plot("t", "x", "y",
                           {"s": [(0, 1.0), (1, 10.0), (2, 100.0)]},
                           width=21, height=9, logy=True)
        assert "(log y)" in text
        rows = [line for line in text.splitlines() if "|" in line]
        # On a log scale the three decades are equally spaced: middle
        # point lands on the middle row.
        middle = rows[len(rows) // 2]
        assert "*" in middle

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            render_plot("t", "x", "y", {"s": [(0, 0.0)]}, logy=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="nothing"):
            render_plot("t", "x", "y", {"s": []})

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError, match="small"):
            render_plot("t", "x", "y", simple_series(), width=4)

    def test_axis_labels_show_value_range(self):
        text = render_plot("t", "x", "y",
                           {"s": [(2.0, 0.001), (8.0, 0.009)]})
        assert "2" in text and "8" in text
        assert "1.00e-03" in text or "0.001" in text
