"""Golden-value determinism tests for the optimized kernel/pipeline.

The kernel optimizations (lazy cancellation, the ``schedule_callback``
fast path, the callback-driven port transmit engine) must not change
simulation results by a single bit: the same seeds must produce the
same discovery times, the same event ordering, and the same per-device
statistics.  The golden values below were captured from the
pre-optimization tree (PR 1) and pin that contract.
"""

import hashlib
import json

from repro.experiments.runner import build_simulation, run_until_ready
from repro.experiments.scenario import Scenario
from repro.experiments.io import spec_to_dict
from repro.topology import make_mesh

#: sha256 over the sorted per-device + per-port stats dump of a 3x3
#: mesh discovery.  Identical for both discovery algorithms because the
#: packet exchange is deterministic.
GOLDEN_STATS_DIGEST = (
    "3abd0da75341d125d8ab7cc851e55aaf492f2445d0d632fe2ee0955e426aed29"
)

GOLDEN_DISCOVERY_TIMES = {
    "parallel": 0.0023844740000000058,
    "serial_packet": 0.004061408000000176,
}


def _stats_snapshot(fabric) -> dict:
    snap = {}
    for name in sorted(fabric.devices):
        dev = fabric.devices[name]
        snap[name] = dev.stats.asdict()
        for port in dev.ports:
            stats = port.stats.asdict()
            if stats:
                snap[f"{name}.p{port.index}"] = stats
    return snap


def _digest(fabric) -> str:
    payload = json.dumps(_stats_snapshot(fabric), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestGoldenDiscovery:
    def test_parallel_discovery_bit_identical(self):
        setup = build_simulation(make_mesh(3, 3), algorithm="parallel")
        stats = run_until_ready(setup)
        assert stats.discovery_time == GOLDEN_DISCOVERY_TIMES["parallel"]
        assert _digest(setup.fabric) == GOLDEN_STATS_DIGEST

    def test_serial_packet_discovery_bit_identical(self):
        setup = build_simulation(make_mesh(3, 3), algorithm="serial_packet")
        stats = run_until_ready(setup)
        assert stats.discovery_time == GOLDEN_DISCOVERY_TIMES["serial_packet"]
        assert _digest(setup.fabric) == GOLDEN_STATS_DIGEST


class TestSeededLossDeterminism:
    """The unreliable-channel subsystem must be exactly reproducible:
    per-link error streams are seeded, so a fixed (BER, seed) pair must
    give identical discovery times, retry counts, and channel damage
    on every run."""

    BER = 5e-5
    SEED = 7

    def _run(self, algorithm):
        from dataclasses import replace

        from repro.fabric.params import DEFAULT_PARAMS

        params = replace(DEFAULT_PARAMS, bit_error_rate=self.BER,
                         error_seed=self.SEED)
        setup = build_simulation(make_mesh(3, 3), algorithm=algorithm,
                                 params=params, max_retries=8)
        stats = run_until_ready(setup)
        return (
            stats.discovery_time,
            stats.retries,
            stats.timeouts,
            stats.stale_completions,
            _digest(setup.fabric),
        )

    def test_lossy_runs_identical_across_repeats(self):
        for algorithm in ("parallel", "serial_packet"):
            first = self._run(algorithm)
            second = self._run(algorithm)
            assert first == second, algorithm
            # The channel must actually have been lossy (the run
            # recovered via retries), or this golden pins nothing.
            assert first[1] > 0, f"{algorithm}: no retries at BER>0"


def _golden_change_result(**extra):
    """The golden 3x3-mesh change run, via the Scenario API."""
    return Scenario(kind="change", topology=spec_to_dict(make_mesh(3, 3)),
                    seed=0, **extra).run()


class TestGoldenChangeExperiment:
    def test_fixed_seed_change_experiment_bit_identical(self):
        result = _golden_change_result()
        info = result.asdict()
        assert info["discovery_time"] == 0.0021016489999999993
        assert (
            info["initial_discovery_time"]
            == GOLDEN_DISCOVERY_TIMES["parallel"]
        )
        assert info["packets"] == 312
        assert info["bytes"] == 14752
        assert info["active_devices"] == 16
        assert info["changed_device"] == "sw_2_1"
        assert info["database_correct"] is True


class TestGoldenLoadScenario:
    """A ``load`` scenario at load 0 must be event-for-event identical
    to the plain ``change`` scenario: the traffic plane draws no RNG
    and schedules no processes when idle."""

    def test_idle_load_scenario_matches_change_golden(self):
        result = Scenario(
            kind="load", topology=spec_to_dict(make_mesh(3, 3)), seed=0,
        ).run()
        assert result.discovery_time == GOLDEN_DISCOVERY_TIMES["parallel"]
        assert result.assimilation_time == 0.0021016489999999993
        assert result.changed_device == "sw_2_1"
        assert result.offered_load == 0.0
        assert result.packets_injected == 0
        assert result.database_correct is True

    def test_explicit_zero_load_spec_matches_change_golden(self):
        from repro.workloads.traffic import TrafficSpec
        result = Scenario(
            kind="load", topology=spec_to_dict(make_mesh(3, 3)), seed=0,
            traffic=TrafficSpec(load=0.0).to_dict(),
        ).run()
        assert result.discovery_time == GOLDEN_DISCOVERY_TIMES["parallel"]
        assert result.assimilation_time == 0.0021016489999999993
        assert result.changed_device == "sw_2_1"

    def test_loaded_run_is_reproducible_and_correct(self):
        from repro.workloads.traffic import TrafficSpec
        def run():
            return Scenario(
                kind="load", topology=spec_to_dict(make_mesh(3, 3)),
                seed=3, traffic=TrafficSpec(load=0.8).to_dict(),
            ).run().asdict()
        first, second = run(), run()
        assert first == second
        assert first["packets_injected"] > 0
        assert first["database_correct"] is True
