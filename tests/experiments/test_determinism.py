"""Golden-value determinism tests for the optimized kernel/pipeline.

The kernel optimizations (lazy cancellation, the ``schedule_callback``
fast path, the callback-driven port transmit engine) must not change
simulation results by a single bit: the same seeds must produce the
same discovery times, the same event ordering, and the same per-device
statistics.  The golden values below were captured from the
pre-optimization tree (PR 1) and pin that contract.
"""

import hashlib
import json

from repro.experiments.runner import (
    build_simulation,
    run_change_experiment,
    run_until_ready,
)
from repro.topology import make_mesh

#: sha256 over the sorted per-device + per-port stats dump of a 3x3
#: mesh discovery.  Identical for both discovery algorithms because the
#: packet exchange is deterministic.
GOLDEN_STATS_DIGEST = (
    "3abd0da75341d125d8ab7cc851e55aaf492f2445d0d632fe2ee0955e426aed29"
)

GOLDEN_DISCOVERY_TIMES = {
    "parallel": 0.0023844740000000058,
    "serial_packet": 0.004061408000000176,
}


def _stats_snapshot(fabric) -> dict:
    snap = {}
    for name in sorted(fabric.devices):
        dev = fabric.devices[name]
        snap[name] = dev.stats.asdict()
        for port in dev.ports:
            stats = port.stats.asdict()
            if stats:
                snap[f"{name}.p{port.index}"] = stats
    return snap


def _digest(fabric) -> str:
    payload = json.dumps(_stats_snapshot(fabric), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestGoldenDiscovery:
    def test_parallel_discovery_bit_identical(self):
        setup = build_simulation(make_mesh(3, 3), algorithm="parallel")
        stats = run_until_ready(setup)
        assert stats.discovery_time == GOLDEN_DISCOVERY_TIMES["parallel"]
        assert _digest(setup.fabric) == GOLDEN_STATS_DIGEST

    def test_serial_packet_discovery_bit_identical(self):
        setup = build_simulation(make_mesh(3, 3), algorithm="serial_packet")
        stats = run_until_ready(setup)
        assert stats.discovery_time == GOLDEN_DISCOVERY_TIMES["serial_packet"]
        assert _digest(setup.fabric) == GOLDEN_STATS_DIGEST


class TestSeededLossDeterminism:
    """The unreliable-channel subsystem must be exactly reproducible:
    per-link error streams are seeded, so a fixed (BER, seed) pair must
    give identical discovery times, retry counts, and channel damage
    on every run."""

    BER = 5e-5
    SEED = 7

    def _run(self, algorithm):
        from dataclasses import replace

        from repro.fabric.params import DEFAULT_PARAMS

        params = replace(DEFAULT_PARAMS, bit_error_rate=self.BER,
                         error_seed=self.SEED)
        setup = build_simulation(make_mesh(3, 3), algorithm=algorithm,
                                 params=params, max_retries=8)
        stats = run_until_ready(setup)
        return (
            stats.discovery_time,
            stats.retries,
            stats.timeouts,
            stats.stale_completions,
            _digest(setup.fabric),
        )

    def test_lossy_runs_identical_across_repeats(self):
        for algorithm in ("parallel", "serial_packet"):
            first = self._run(algorithm)
            second = self._run(algorithm)
            assert first == second, algorithm
            # The channel must actually have been lossy (the run
            # recovered via retries), or this golden pins nothing.
            assert first[1] > 0, f"{algorithm}: no retries at BER>0"


class TestGoldenChangeExperiment:
    def test_fixed_seed_change_experiment_bit_identical(self):
        result = run_change_experiment(make_mesh(3, 3), seed=0)
        info = result.asdict()
        assert info["discovery_time"] == 0.0021016489999999993
        assert (
            info["initial_discovery_time"]
            == GOLDEN_DISCOVERY_TIMES["parallel"]
        )
        assert info["packets"] == 312
        assert info["bytes"] == 14752
        assert info["active_devices"] == 16
        assert info["changed_device"] == "sw_2_1"
        assert info["database_correct"] is True
