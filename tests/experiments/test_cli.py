"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "10x10 torus" in out
        assert "Total Devices" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serial_packet" in out
        assert "4-port 3-tree" in out

    def test_discover(self, capsys):
        code = main(["discover", "--topology", "3x3 mesh",
                     "--algorithm", "parallel"])
        assert code == 0
        out = capsys.readouterr().out
        assert "devices_found        : 18" in out
        assert "database_correct" in out

    def test_discover_with_factors(self, capsys):
        main(["discover", "--topology", "3x3 mesh",
              "--fm-factor", "4", "--device-factor", "0.5"])
        fast = capsys.readouterr().out
        main(["discover", "--topology", "3x3 mesh"])
        base = capsys.readouterr().out

        def extract(text):
            for line in text.splitlines():
                if "discovery_time" in line:
                    return line.split(":")[1].strip()
            raise AssertionError("no discovery_time line")

        assert extract(fast) != extract(base)

    def test_change(self, capsys):
        code = main(["change", "--topology", "3x3 mesh", "--seed", "1",
                     "--kind", "add_switch"])
        assert code == 0
        out = capsys.readouterr().out
        assert "change                 : add_switch" in out

    def test_figure7(self, capsys):
        assert main(["figure", "7"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7(a)" in out
        assert "parallel period = T_FM" in out

    def test_figure4_quick(self, capsys):
        assert main(["figure", "4", "--quick"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_change_multiple_seeds_parallel(self, capsys):
        code = main(["change", "--topology", "3x3 mesh",
                     "--seeds", "2", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(seed 0)" in out
        assert "(seed 1)" in out

    def test_figure_jobs_matches_serial(self, capsys):
        assert main(["figure", "4", "--quick", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert main(["figure", "4", "--quick", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert parallel == serial

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["discover", "--topology", "17x17 hypermesh"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
