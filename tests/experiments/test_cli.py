"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "10x10 torus" in out
        assert "Total Devices" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serial_packet" in out
        assert "4-port 3-tree" in out

    def test_discover(self, capsys):
        code = main(["discover", "--topology", "3x3 mesh",
                     "--algorithm", "parallel"])
        assert code == 0
        out = capsys.readouterr().out
        assert "devices_found        : 18" in out
        assert "database_correct" in out

    def test_discover_with_factors(self, capsys):
        main(["discover", "--topology", "3x3 mesh",
              "--fm-factor", "4", "--device-factor", "0.5"])
        fast = capsys.readouterr().out
        main(["discover", "--topology", "3x3 mesh"])
        base = capsys.readouterr().out

        def extract(text):
            for line in text.splitlines():
                if "discovery_time" in line:
                    return line.split(":")[1].strip()
            raise AssertionError("no discovery_time line")

        assert extract(fast) != extract(base)

    def test_change(self, capsys):
        code = main(["change", "--topology", "3x3 mesh", "--seed", "1",
                     "--kind", "add_switch"])
        assert code == 0
        out = capsys.readouterr().out
        assert "change                 : add_switch" in out

    def test_figure7(self, capsys):
        assert main(["figure", "7"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7(a)" in out
        assert "parallel period = T_FM" in out

    def test_figure4_quick(self, capsys):
        assert main(["figure", "4", "--quick"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_change_multiple_seeds_parallel(self, capsys):
        code = main(["change", "--topology", "3x3 mesh",
                     "--seeds", "2", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(seed 0)" in out
        assert "(seed 1)" in out

    def test_figure_jobs_matches_serial(self, capsys):
        assert main(["figure", "4", "--quick", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert main(["figure", "4", "--quick", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert parallel == serial

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["discover", "--topology", "17x17 hypermesh"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestFuzzCli:
    def test_fuzz_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--runs", "4", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "4 scenario(s)" in out
        assert "0 failure(s)" in out

    def test_fuzz_injected_failure_exits_one_and_writes_corpus(
            self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        code = main(["fuzz", "--runs", "2", "--seed", "0",
                     "--inject", "bogus_cli_option=true",
                     "--corpus", str(corpus)])
        assert code == 1
        out = capsys.readouterr().out
        assert "error:TypeError" in out
        assert list(corpus.glob("*.json"))

    def test_fuzz_no_shrink_flag(self, capsys):
        code = main(["fuzz", "--runs", "1", "--seed", "0",
                     "--no-shrink", "--inject", "bogus=1"])
        assert code == 1

    def test_fuzz_bad_inject_syntax_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--runs", "1", "--inject", "not-a-pair"])

    def test_replay_checked_in_corpus(self, capsys):
        assert main(["replay", "--corpus", "tests/corpus",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out

    def test_replay_empty_directory_exits_one(self, capsys, tmp_path):
        assert main(["replay", "--corpus", str(tmp_path)]) == 1
        assert "no corpus entries" in capsys.readouterr().out


class TestFailoverCli:
    def test_failover_both_modes_exits_zero(self, capsys):
        code = main(["failover", "--topology", "mesh9", "--faults", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FM failover" in out
        assert "warm" in out and "cold" in out

    def test_failover_single_mode_with_restart(self, capsys):
        code = main(["failover", "--topology", "mesh9", "--mode", "warm",
                     "--faults", "0", "--restart-primary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cold" not in out.split("----")[-1]
