"""Failover experiment family: kill the primary FM, measure takeover.

Covers the acceptance bar for the failover work: warm takeover on a
churned mesh64 is measurably faster than a cold rediscovery on the
same schedule, both converge with a clean audit, and a resurrected
old primary demotes itself instead of split-braining the fabric.
"""

import pytest

from repro.experiments.failover import (
    render_failover,
    run_failover_experiment,
    summarize_failover,
    sweep_failover,
)
from repro.experiments.scenario import Scenario
from repro.topology.registry import resolve_topology


class TestColdTakeover:
    def test_converges_with_clean_audit_on_mesh16(self):
        result = run_failover_experiment(
            resolve_topology("mesh16"), mode="cold", seed=0,
        )
        assert result.takeover_mode == "cold"
        assert result.missed_heartbeats >= result.miss_threshold
        assert result.detection_latency > 0
        assert result.recovery_time > 0
        assert result.converged
        assert result.audit_ok


class TestWarmTakeover:
    def test_uses_the_mirror_and_converges_on_mesh16(self):
        result = run_failover_experiment(
            resolve_topology("mesh16"), mode="warm", seed=0,
        )
        assert result.takeover_mode == "warm"
        assert result.mirror_syncs > 0
        assert result.converged
        assert result.audit_ok

    def test_warm_recovery_beats_cold_on_churned_mesh64(self):
        spec = resolve_topology("mesh64")
        cold = run_failover_experiment(spec, mode="cold", seed=3)
        warm = run_failover_experiment(spec, mode="warm", seed=3)
        assert cold.converged and cold.audit_ok
        assert warm.converged and warm.audit_ok
        assert warm.takeover_mode == "warm"
        # The acceptance bar: verify/repair from a live mirror is
        # measurably faster than rediscovering 112 devices cold.
        assert warm.recovery_time < cold.recovery_time


class TestFencing:
    @pytest.mark.parametrize("mode", ("warm", "cold"))
    def test_resurrected_primary_demotes_itself(self, mode):
        result = run_failover_experiment(
            resolve_topology("mesh16"), mode=mode, seed=1,
            restart_primary=True,
        )
        assert result.restart_primary
        assert result.old_primary_demoted is True
        assert result.converged
        assert result.audit_ok


class TestSweep:
    def test_sweep_summarize_render(self):
        spec = resolve_topology("mesh9")
        results = sweep_failover(
            spec, modes=("warm", "cold"), seeds=(0, 1), faults=1,
        )
        assert len(results) == 4
        rows = summarize_failover(results)
        assert {row["mode"] for row in rows} == {"warm", "cold"}
        for row in rows:
            assert row["runs"] == 2
            assert row["all_converged"]
            assert row["audit_pass_rate"] == 1.0
        text = render_failover(rows, title="failover")
        assert "t_recover" in text and "failover" in text


class TestScenarioIntegration:
    def test_failover_scenario_runs_and_roundtrips(self):
        scenario = Scenario(
            kind="failover", topology="mesh9", manager="partial",
            mode="warm", faults=1, heartbeat_interval=1e-3,
            miss_threshold=2, seed=0,
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        result = scenario.run()
        assert result.mode == "warm"
        assert result.converged
        assert result.audit_ok

    def test_failover_scenario_validation(self):
        with pytest.raises(ValueError):
            Scenario(kind="failover", topology="mesh9", mode="tepid")
        with pytest.raises(ValueError):
            Scenario(kind="failover", topology="mesh9",
                     heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            Scenario(kind="failover", topology="mesh9", miss_threshold=0)
