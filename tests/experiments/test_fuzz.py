"""Fuzzing-lab tests: sampler determinism, the find/shrink loop, and
byte-stable corpus output."""

import json

import pytest

from repro.experiments.fuzz import (
    CORPUS_SCHEMA,
    FuzzFailure,
    _classify_error,
    corpus_entry,
    corpus_filename,
    evaluate_scenario,
    iter_corpus,
    load_corpus_entry,
    render_corpus_entry,
    replay_corpus,
    run_fuzz,
    sample_scenario,
    write_corpus,
)
from repro.experiments.scenario import KINDS, Scenario

INJECT = {"definitely_not_an_fm_option": True}


class TestSampler:
    def test_same_seed_and_index_is_identical(self):
        for index in range(40):
            assert sample_scenario(7, index) == sample_scenario(7, index)

    def test_different_indices_differ(self):
        scenarios = {sample_scenario(0, i).to_dict().__str__()
                     for i in range(40)}
        assert len(scenarios) > 30

    def test_covers_every_kind(self):
        kinds = {sample_scenario(0, i).kind for i in range(60)}
        assert kinds == set(KINDS)

    def test_samples_embedded_irregular_specs(self):
        assert any(isinstance(sample_scenario(0, i).topology, dict)
                   for i in range(30))

    def test_every_sample_round_trips_through_json(self):
        for index in range(40):
            scenario = sample_scenario(3, index)
            wire = json.loads(json.dumps(scenario.to_dict()))
            assert Scenario.from_dict(wire) == scenario

    def test_inject_lands_in_fm_options(self):
        scenario = sample_scenario(0, 0, inject=INJECT)
        assert scenario.fm_options == INJECT


class TestClassification:
    def test_executor_error_string_maps_to_reason(self):
        assert _classify_error("TypeError: bad kwarg") == \
            ("error:TypeError", "bad kwarg")
        assert _classify_error("DiscoveryAborted") == \
            ("error:DiscoveryAborted", "DiscoveryAborted")

    def test_evaluate_scenario_passes_clean_run(self):
        scenario = Scenario(kind="discover", topology="4-port 2-tree")
        assert evaluate_scenario(scenario) is None

    def test_evaluate_scenario_reports_exception_reason(self):
        scenario = Scenario(kind="discover", topology="4-port 2-tree",
                            fm_options=INJECT)
        reason, detail = evaluate_scenario(scenario)
        assert reason == "error:TypeError"
        assert "definitely_not_an_fm_option" in detail


class TestRunFuzz:
    def test_default_space_is_clean(self):
        report = run_fuzz(6, seed=0, workers=1, shrink=False)
        assert report.ok
        assert report.runs == 6
        assert len(report.scenarios) == 6
        assert "0 failure(s)" in report.summary()

    def test_worker_count_does_not_change_the_outcome(self):
        serial = run_fuzz(5, seed=1, workers=1, shrink=True,
                          inject=INJECT)
        parallel = run_fuzz(5, seed=1, workers=3, shrink=True,
                            inject=INJECT)
        assert [f.index for f in serial.failures] == \
            [f.index for f in parallel.failures]
        assert [f.minimal for f in serial.failures] == \
            [f.minimal for f in parallel.failures]

    def test_injected_failures_are_found_and_shrunk(self):
        report = run_fuzz(4, seed=0, workers=2, shrink=True,
                          inject=INJECT)
        assert not report.ok
        assert len(report.failures) == 4
        for failure in report.failures:
            assert failure.reason == "error:TypeError"
            assert failure.shrunk is not None
            assert failure.minimal.fm_options == INJECT
            # The shrunk scenario still reproduces the failure.
            verdict = evaluate_scenario(failure.minimal)
            assert verdict is not None
            assert verdict[0] == failure.reason

    def test_shrink_off_keeps_the_sampled_scenario(self):
        report = run_fuzz(2, seed=0, workers=1, shrink=False,
                          inject=INJECT)
        for failure in report.failures:
            assert failure.shrunk is None
            assert failure.minimal == failure.scenario


class TestCorpus:
    def test_corpus_bytes_are_deterministic(self, tmp_path):
        first = tmp_path / "a"
        second = tmp_path / "b"
        for directory, workers in ((first, 2), (second, 1)):
            run_fuzz(3, seed=0, workers=workers, shrink=True,
                     inject=INJECT, corpus_dir=directory)
        names = [p.name for p in iter_corpus(first)]
        assert names == [p.name for p in iter_corpus(second)]
        assert names, "expected corpus entries from injected failures"
        for name in names:
            assert (first / name).read_bytes() == \
                (second / name).read_bytes()

    def test_filename_derives_from_content(self):
        scenario = Scenario(kind="discover", topology="4-port 2-tree")
        name = corpus_filename(scenario)
        assert name.startswith("discover-")
        assert name.endswith(".json")
        assert corpus_filename(scenario) == name
        other = Scenario(kind="discover", topology="3x3 mesh")
        assert corpus_filename(other) != name

    def test_entry_render_is_canonical(self):
        scenario = Scenario(kind="discover", topology="4-port 2-tree")
        document = corpus_entry(scenario, "coverage", "seed entry")
        text = render_corpus_entry(document)
        assert text.endswith("\n")
        assert text == render_corpus_entry(json.loads(text))
        assert json.loads(text)["schema"] == CORPUS_SCHEMA

    def test_load_rejects_bad_schema_and_missing_scenario(self, tmp_path):
        bad_schema = tmp_path / "bad.json"
        bad_schema.write_text(json.dumps({"schema": "nope",
                                          "scenario": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_corpus_entry(bad_schema)
        no_scenario = tmp_path / "empty.json"
        no_scenario.write_text(json.dumps({"schema": CORPUS_SCHEMA}))
        with pytest.raises(ValueError, match="no scenario"):
            load_corpus_entry(no_scenario)

    def test_write_then_load_round_trips(self, tmp_path):
        scenario = Scenario(kind="discover", topology="4-port 2-tree")
        failure = FuzzFailure(index=0, scenario=scenario,
                              reason="coverage", detail="seed entry")
        (path,) = write_corpus([failure], tmp_path)
        document, loaded = load_corpus_entry(path)
        assert loaded == scenario
        assert document["reason"] == "coverage"

    def test_replay_flags_failing_entries(self, tmp_path):
        good = Scenario(kind="discover", topology="4-port 2-tree")
        bad = Scenario(kind="discover", topology="4-port 2-tree",
                       fm_options=INJECT)
        write_corpus(
            [FuzzFailure(0, good, "coverage", ""),
             FuzzFailure(1, bad, "error:TypeError", "")],
            tmp_path,
        )
        outcomes = replay_corpus(tmp_path, workers=1)
        assert len(outcomes) == 2
        by_ok = {outcome.ok for outcome in outcomes}
        assert by_ok == {True, False}
        failing = next(o for o in outcomes if not o.ok)
        assert failing.reason == "error:TypeError"
