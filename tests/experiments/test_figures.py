"""Tests for the experiment sweeps and figure builders (small scale)."""

import pytest

from repro.experiments.figures import (
    figure4,
    figure6,
    figure7,
    figure8,
    figure9,
    figure_table1,
    overhead_comparison,
)
from repro.experiments.io import spec_to_dict
from repro.experiments.scenario import Scenario
from repro.experiments.sweep import (
    measure_initial_discovery,
    sweep_change_experiments,
    sweep_device_factor,
    sweep_fm_factor,
)
from repro.manager import ALGORITHMS, PARALLEL, SERIAL_PACKET
from repro.topology import make_mesh, table1_topology

SMALL = [make_mesh(2, 2), make_mesh(2, 3)]


def _change(spec, seed=0, **extra):
    return Scenario(kind="change", topology=spec_to_dict(spec),
                    seed=seed, **extra).run()


class TestRunner:
    def test_change_experiment_result_fields(self):
        result = _change(make_mesh(3, 3), seed=3)
        d = result.asdict()
        assert d["topology"] == "3x3 mesh"
        assert d["database_correct"] is True
        assert d["discovery_time"] > 0
        assert 0 < d["active_devices"] <= 18

    def test_unknown_change_kind_rejected(self):
        with pytest.raises(ValueError):
            _change(make_mesh(2, 2), change="paint_it_red")

    def test_removal_reduces_active_devices(self):
        result = _change(make_mesh(3, 3), change="remove_switch", seed=0)
        assert result.active_devices < result.total_devices

    def test_seeds_choose_different_victims(self):
        victims = {
            _change(make_mesh(3, 3), seed=s).changed_device
            for s in range(6)
        }
        assert len(victims) > 1


class TestSweeps:
    def test_change_sweep_shape(self):
        results = sweep_change_experiments(
            topologies=SMALL, algorithms=(PARALLEL,), seeds=range(2)
        )
        assert len(results) == len(SMALL) * 2
        assert all(r.database_correct for r in results)

    def test_fm_factor_sweep_monotone(self):
        series = sweep_fm_factor(
            make_mesh(2, 2), factors=(0.5, 1.0, 2.0),
            algorithms=(SERIAL_PACKET,),
        )
        times = [t for _f, t in series[SERIAL_PACKET]]
        assert times[0] > times[1] > times[2]

    def test_device_factor_sweep_monotone_for_serial(self):
        series = sweep_device_factor(
            make_mesh(2, 2), factors=(0.2, 1.0),
            algorithms=(SERIAL_PACKET,),
        )
        times = dict(series[SERIAL_PACKET])
        assert times[0.2] > times[1.0]

    def test_measure_attaches_mean_fm_time(self):
        stats = measure_initial_discovery(make_mesh(2, 2), PARALLEL)
        assert 5e-6 < stats.mean_fm_time < 30e-6


class TestFigureBuilders:
    def test_table1(self):
        rows, text = figure_table1()
        assert len(rows) == 13
        assert "10x10 torus" in text

    def test_figure4_small(self):
        data, text = figure4(topologies=SMALL)
        assert set(data["series"]) == set(ALGORITHMS)
        # Fig. 4 ordering in the measured values too.
        for (_, sp), (_, pa) in zip(
            data["series"]["serial_packet"], data["series"]["parallel"]
        ):
            assert sp > pa
        assert "Fig. 4" in text

    def test_figure6_small(self):
        data, text = figure6(topologies=SMALL, seeds=range(1))
        assert set(data["per_run"]) == set(ALGORITHMS)
        assert "Fig. 6(a)" in text and "Fig. 6(b)" in text
        # Parallel strictly fastest on every topology mean.
        means = data["per_topology_mean"]
        for (x_sp, t_sp), (x_p, t_p) in zip(
            means["serial_packet"], means["parallel"]
        ):
            assert x_sp == x_p
            assert t_p < t_sp

    def test_figure7_slopes_match_model(self):
        data, text = figure7(spec=make_mesh(2, 2))
        ideal = data["ideal"]
        assert data["slopes"]["parallel"] == pytest.approx(
            ideal["parallel period = T_FM"], rel=0.1
        )
        assert data["slopes"]["serial_packet"] == pytest.approx(
            ideal["serial period  = T_FM + 2*T_Prop + T_Device"], rel=0.1
        )
        assert "Fig. 7(b)" in text

    def test_figure8_small(self):
        data, text = figure8(
            spec=make_mesh(2, 2),
            fm_factors=(0.5, 1.0, 4.0),
            device_factors=(0.2, 1.0),
        )
        fm = data["fm_factor"]
        # Faster FM -> smaller times for every algorithm.
        for algo, points in fm.items():
            times = [t for _f, t in points]
            assert times == sorted(times, reverse=True)
        # Device slowdown hurts serial but not parallel.
        dev = data["device_factor"]
        sp = dict(dev["serial_packet"])
        pa = dict(dev["parallel"])
        assert sp[0.2] > sp[1.0] * 1.05
        assert pa[0.2] < pa[1.0] * 1.05
        assert "Fig. 8(a)" in text

    def test_figure9_small(self):
        data, text = figure9(topologies=[make_mesh(2, 2)], seeds=range(1))
        assert set(data) == {"a", "b", "c"}
        assert data["c"]["fm_factor"] == 4.0
        assert "Fig. 9(c)" in text

    def test_overhead_comparison_small(self):
        data, text = overhead_comparison(topologies=SMALL)
        for row in data:
            requests = set(row["requests"].values())
            assert len(requests) == 1  # identical across algorithms
            assert row["expected_requests"] in requests
        assert "S1." in text
