"""Tests for topology/result JSON serialization."""

import json

import pytest

from repro.experiments.io import (
    IoError,
    load_results,
    load_spec,
    results_to_dict,
    save_results,
    save_spec,
    spec_from_dict,
    spec_to_dict,
)
from repro.experiments.scenario import Scenario
from repro.sim import Environment
from repro.topology import make_fattree, make_irregular, make_mesh


def _change(seed):
    return Scenario(kind="change", topology=spec_to_dict(make_mesh(2, 2)),
                    seed=seed).run()


class TestSpecRoundtrip:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: make_mesh(3, 3),
            lambda: make_fattree(4, 2),
            lambda: make_irregular(5, extra_links=2, seed=9),
        ],
        ids=["mesh", "tree", "irregular"],
    )
    def test_dict_roundtrip(self, builder):
        spec = builder()
        clone = spec_from_dict(spec_to_dict(spec))
        assert clone.name == spec.name
        assert clone.switches == spec.switches
        assert clone.endpoints == spec.endpoints
        assert clone.links == spec.links
        assert clone.fm_host == spec.fm_host

    def test_file_roundtrip_builds_identical_fabric(self, tmp_path):
        spec = make_mesh(2, 3)
        path = save_spec(spec, tmp_path / "mesh.json")
        clone = load_spec(path)
        a = spec.build(Environment())
        b = clone.build(Environment())
        a.power_up()
        b.power_up()
        ga, gb = a.graph(), b.graph()
        assert set(ga.nodes) == set(gb.nodes)
        assert set(map(frozenset, ga.edges)) == set(map(frozenset, gb.edges))

    def test_schema_mismatch_rejected(self):
        with pytest.raises(IoError, match="schema"):
            spec_from_dict({"schema": "something/else"})

    def test_malformed_document_rejected(self):
        doc = spec_to_dict(make_mesh(2, 2))
        del doc["links"]
        with pytest.raises(IoError, match="malformed"):
            spec_from_dict(doc)

    def test_invalid_spec_content_rejected(self):
        doc = spec_to_dict(make_mesh(2, 2))
        doc["links"].append(["ghost", 0, "sw_0_0", 9])
        with pytest.raises(Exception):
            spec_from_dict(doc)


class TestResultsRoundtrip:
    def test_save_and_load(self, tmp_path):
        results = [
            _change(s) for s in range(2)
        ]
        path = save_results(results, tmp_path / "runs.json")
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0]["topology"] == "2x2 mesh"
        assert loaded[0]["database_correct"] is True

    def test_family_round_trips(self, tmp_path):
        results = [_change(0)]
        path = save_results(results, tmp_path / "runs.json")
        loaded = load_results(path)
        # The Fig. 9 grouping axis must survive archiving, and the
        # archived run must round-trip unchanged.
        assert loaded[0]["family"] == "mesh"
        assert loaded == [r.asdict() for r in results]

    def test_json_is_plain_data(self, tmp_path):
        results = [_change(0)]
        doc = results_to_dict(results)
        json.dumps(doc)  # must not raise

    def test_schema_checked_on_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "runs": []}))
        with pytest.raises(IoError, match="schema"):
            load_results(path)

    def test_runs_must_be_a_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"schema": "repro/experiment-results/v1", "runs": 7}
        ))
        with pytest.raises(IoError, match="list"):
            load_results(path)
