"""Chaos-soak tests: mid-discovery churn must converge deterministically.

The golden values pin the full chain — fault schedule, hold-until-busy
injection, suspect classification, bounded restart, convergence guard,
and the final audit — for one fixed seed on the paper's figure-6 mesh.
Any change to the event kernel, the walkers, or the policy that shifts
a single packet shows up here as a one-bit diff.
"""

from repro.cli import main
from repro.experiments.churn import (
    run_churn_experiment,
    summarize_churn,
    sweep_churn,
)
from repro.manager import PARALLEL
from repro.topology import make_mesh

#: Captured from the tree that introduced the churn harness; the soak
#: at seed 0 must reproduce these bit-for-bit.
GOLDEN_SEED0 = {
    "topology": "4x4 mesh",
    "family": "mesh",
    "algorithm": "parallel",
    "manager": "full",
    "seed": 0,
    "faults": 6,
    "mid_discovery_faults": 5,
    "discoveries": 3,
    "restarts": 1,
    "repairs": 0,
    "full_rediscoveries": 2,
    "partial_bursts": 0,
    "guard_probes": 6,
    "guard_mismatches": 0,
    "aborted_runs": 0,
    "time_to_converge": 0.0040966246026045705,
    "converged": True,
    "audit_ok": True,
    "audit_differences": 0,
    "devices_found": 32,
}


class TestGoldenChurn:
    def test_seed0_soak_bit_identical_to_golden(self):
        result = run_churn_experiment(
            make_mesh(4, 4), algorithm=PARALLEL, seed=0,
        )
        assert result.asdict() == GOLDEN_SEED0

    def test_rerun_reproduces_every_field(self):
        first = run_churn_experiment(
            make_mesh(4, 4), algorithm=PARALLEL, seed=1,
        )
        second = run_churn_experiment(
            make_mesh(4, 4), algorithm=PARALLEL, seed=1,
        )
        assert first == second


class TestAcceptance:
    """The ISSUE's bar: the fig-6 mesh with mid-discovery faults always
    terminates, converges within the restart budget, and audits clean."""

    def test_full_manager_converges_and_audits_clean(self):
        for seed in range(3):
            result = run_churn_experiment(
                make_mesh(4, 4), algorithm=PARALLEL, seed=seed,
            )
            assert result.mid_discovery_faults >= 1, seed
            assert result.aborted_runs == 0, seed
            assert result.converged, seed
            assert result.audit_ok, seed
            assert result.audit_differences == 0, seed

    def test_partial_manager_survives_churn(self):
        result = run_churn_experiment(
            make_mesh(4, 4), algorithm=PARALLEL, seed=2, manager="partial",
        )
        assert result.converged
        assert result.audit_ok
        assert result.aborted_runs == 0


class TestSweep:
    def test_workers_do_not_change_results(self):
        spec = make_mesh(3, 3)
        serial = sweep_churn(spec, algorithms=(PARALLEL,), seeds=(0, 1),
                             workers=1, progress=False)
        forked = sweep_churn(spec, algorithms=(PARALLEL,), seeds=(0, 1),
                             workers=2, progress=False)
        assert serial == forked
        assert [r.seed for r in serial] == [0, 1]

    def test_summary_aggregates_by_manager_and_algorithm(self):
        spec = make_mesh(3, 3)
        results = sweep_churn(spec, algorithms=(PARALLEL,), seeds=(0, 1),
                              progress=False)
        rows = summarize_churn(results)
        assert len(rows) == 1
        row = rows[0]
        assert row["manager"] == "full"
        assert row["algorithm"] == PARALLEL
        assert row["runs"] == 2
        assert row["aborted_runs"] == 0
        assert row["audit_pass_rate"] == 1.0
        assert row["all_converged"] is True


class TestChurnCli:
    def test_churn_command_smoke(self, capsys):
        code = main(["churn", "--topology", "3x3 mesh",
                     "--algorithm", "parallel", "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mid-walk" in out
        assert "audit" in out

    def test_churn_jobs_match_serial(self, capsys):
        assert main(["churn", "--topology", "3x3 mesh",
                     "--algorithm", "parallel", "--seeds", "2",
                     "--jobs", "2"]) == 0
        forked = capsys.readouterr().out
        assert main(["churn", "--topology", "3x3 mesh",
                     "--algorithm", "parallel", "--seeds", "2",
                     "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert forked == serial
