"""Shrinker unit tests: greedy minimization with stub evaluators."""

import pytest

from repro.experiments.io import spec_to_dict
from repro.experiments.scenario import Scenario
from repro.experiments.shrink import (
    shrink_candidates,
    shrink_scenario,
)
from repro.manager.timing import ProcessingTimeModel
from repro.topology import make_irregular, parse_irregular_name


def always_fails(scenario):
    return ("boom", "still failing")


def never_fails(scenario):
    return None


FULL = Scenario(
    kind="churn", topology="8x8 mesh", algorithm="serial_packet",
    manager="partial", seed=17, faults=6, mean_interval=2e-3,
    verify_sample=3,
    timing=ProcessingTimeModel(fm_factor=2.0, device_factor=0.5),
    fm_options={"arrival_clears_timeout": False},
)


class TestShrinkScenario:
    def test_everything_optional_is_stripped(self):
        result = shrink_scenario(FULL, "boom", "detail", always_fails,
                                 max_attempts=200)
        minimal = result.scenario
        assert minimal.timing is None
        assert minimal.fm_options is None
        assert minimal.mean_interval is None
        assert minimal.verify_sample is None
        assert minimal.faults == 1
        assert minimal.seed == 0
        # Topology walked down to the smallest Table 1 entry.
        assert minimal.topology == "4-port 2-tree"
        assert result.reason == "boom"
        assert result.steps > 0
        assert result.attempts >= result.steps

    def test_fixpoint_when_nothing_reproduces(self):
        result = shrink_scenario(FULL, "boom", "detail", never_fails)
        assert result.scenario == FULL
        assert result.steps == 0

    def test_different_reason_is_rejected(self):
        # Candidates fail, but for another reason: no shrink accepted.
        result = shrink_scenario(
            FULL, "boom", "detail",
            lambda s: ("other_reason", "different failure"),
        )
        assert result.scenario == FULL
        assert result.steps == 0

    def test_max_attempts_caps_evaluations(self):
        calls = []

        def counting(scenario):
            calls.append(scenario)
            return ("boom", "x")

        result = shrink_scenario(FULL, "boom", "detail", counting,
                                 max_attempts=3)
        assert len(calls) == 3
        assert result.attempts == 3

    def test_evaluator_exception_becomes_error_reason(self):
        def explodes(scenario):
            raise RuntimeError("worker died")

        # Original reason is the matching error class: shrink proceeds.
        result = shrink_scenario(FULL, "error:RuntimeError", "d",
                                 explodes, max_attempts=50)
        assert result.steps > 0
        # Original reason differs: every candidate is rejected.
        result = shrink_scenario(FULL, "boom", "d", explodes)
        assert result.scenario == FULL

    def test_shrink_is_deterministic(self):
        first = shrink_scenario(FULL, "boom", "d", always_fails,
                                max_attempts=200)
        second = shrink_scenario(FULL, "boom", "d", always_fails,
                                 max_attempts=200)
        assert first.scenario == second.scenario
        assert first.attempts == second.attempts


class TestIrregularTopologyShrink:
    def test_embedded_spec_shrinks_smaller(self):
        spec = make_irregular(8, extra_links=3, switch_ports=8, seed=5)
        scenario = Scenario(kind="discover",
                            topology=spec_to_dict(spec))
        result = shrink_scenario(scenario, "boom", "d", always_fails,
                                 max_attempts=200)
        assert isinstance(result.scenario.topology, dict)
        shrunk = parse_irregular_name(result.scenario.topology["name"])
        assert shrunk is not None
        assert shrunk[0] < 8  # fewer switches than the original

    def test_candidates_preserve_recorded_seed(self):
        spec = make_irregular(6, extra_links=2, switch_ports=8, seed=9)
        scenario = Scenario(kind="discover",
                            topology=spec_to_dict(spec))
        for candidate in shrink_candidates(scenario):
            if not isinstance(candidate.topology, dict):
                continue
            recorded = parse_irregular_name(candidate.topology["name"])
            assert recorded is not None
            assert recorded[2] == 9

    def test_unparseable_spec_name_yields_no_topology_candidates(self):
        spec = make_irregular(4, extra_links=1, switch_ports=8, seed=2)
        document = spec_to_dict(spec)
        document["name"] = "hand-built"
        scenario = Scenario(kind="discover", topology=document)
        for candidate in shrink_candidates(scenario):
            # Non-topology simplifications (seed) may still appear.
            assert candidate.topology == scenario.topology


class TestCandidateOrder:
    def test_topology_candidates_come_first(self):
        candidates = list(shrink_candidates(FULL))
        assert candidates, "expected candidates for a rich scenario"
        assert candidates[0].topology != FULL.topology

    def test_candidates_are_valid_and_distinct(self):
        seen = set()
        for candidate in shrink_candidates(FULL):
            assert candidate != FULL
            key = str(sorted(candidate.to_dict().items(), key=str))
            seen.add(key)
        assert len(seen) >= 5

    def test_smallest_table1_has_no_topology_candidates(self):
        scenario = Scenario(kind="discover", topology="4-port 2-tree",
                            seed=0)
        assert list(shrink_candidates(scenario)) == []

    def test_add_switch_normalizes_to_remove_switch(self):
        scenario = Scenario(kind="change", topology="4-port 2-tree",
                            change="add_switch", seed=0)
        kinds = [c.change for c in shrink_candidates(scenario)]
        assert kinds == ["remove_switch"]

    def test_rate_halving_candidates(self):
        scenario = Scenario(
            kind="reliability", topology="4-port 2-tree", seed=0,
            params={"bit_error_rate": 1e-4},
        )
        with_params = [c.params for c in shrink_candidates(scenario)
                       if c.params is not None]
        assert {"bit_error_rate": 0.0} in with_params
        assert {"bit_error_rate": 5e-5} in with_params
