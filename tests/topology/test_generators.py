"""Unit tests for the mega-scale generator families.

Covers the Swapped Dragonfly generator, the auto-designed two-layer
fat-tree generator, their lossless parseable names, and the registry
that dispatches CLI/scenario topology strings across every family.
"""

import pytest

from repro.capability.baseline import MAX_PORT_BLOCKS
from repro.topology import (
    canonical_topology_name,
    dragonfly_name,
    fat_tree2_name,
    make_dragonfly,
    make_fat_tree2,
    parse_dragonfly_name,
    parse_fat_tree2_name,
    resolve_topology,
)


def _switch_adjacency(spec):
    """name -> set(name) over switch-to-switch links only."""
    switch_names = {name for name, _ in spec.switches}
    adj = {name: set() for name in switch_names}
    for a, _pa, b, _pb in spec.links:
        if a in switch_names and b in switch_names:
            adj[a].add(b)
            adj[b].add(a)
    return adj


def _diameter(adj):
    from collections import deque

    worst = 0
    for start in adj:
        dist = {start: 0}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for w in adj[v]:
                if w not in dist:
                    dist[w] = dist[v] + 1
                    queue.append(w)
        assert len(dist) == len(adj), "switch graph is disconnected"
        worst = max(worst, max(dist.values()))
    return worst


class TestDragonfly:
    def test_counts_and_uniform_radix(self):
        spec = make_dragonfly(4, 8, endpoints_per_switch=2)
        assert len(spec.switches) == 32          # K * M
        assert len(spec.endpoints) == 64         # K * M * E
        radii = {nports for _, nports in spec.switches}
        assert len(radii) == 1                   # uniform switch radix
        spec.validate()

    def test_local_links_complete_graph_per_group(self):
        k, m = 5, 3
        spec = make_dragonfly(k, m)
        adj = _switch_adjacency(spec)
        for g in range(m):
            for r in range(k):
                local = {f"sw_{g}_{j}" for j in range(k) if j != r}
                assert local <= adj[f"sw_{g}_{r}"]

    def test_each_group_pair_has_one_global_link(self):
        k, m = 4, 6
        spec = make_dragonfly(k, m)
        pair_links = {}
        for a, _pa, b, _pb in spec.links:
            if a.startswith("sw") and b.startswith("sw"):
                ga = int(a.split("_")[1])
                gb = int(b.split("_")[1])
                if ga != gb:
                    key = (min(ga, gb), max(ga, gb))
                    pair_links[key] = pair_links.get(key, 0) + 1
        assert len(pair_links) == m * (m - 1) // 2
        assert set(pair_links.values()) == {1}

    def test_switch_diameter_at_most_three(self):
        # Complete group graphs + complete global pairing: local ->
        # global -> local is the longest minimal switch path.
        spec = make_dragonfly(4, 7)
        assert _diameter(_switch_adjacency(spec)) <= 3

    def test_name_round_trip(self):
        assert dragonfly_name(16, 125, 4) == "dragonfly-k16m125e4"
        assert dragonfly_name(8, 62, 1) == "dragonfly-k8m62"
        assert parse_dragonfly_name("dragonfly-k16m125e4") == (16, 125, 4)
        assert parse_dragonfly_name("dragonfly-k8m62") == (8, 62, 1)
        assert parse_dragonfly_name("mesh9") is None
        assert parse_dragonfly_name("dragonfly-k8") is None
        spec = make_dragonfly(3, 4, endpoints_per_switch=2)
        assert parse_dragonfly_name(spec.name) == (3, 4, 2)

    @pytest.mark.parametrize("k,m,e", [(1, 4, 1), (4, 1, 1), (4, 4, 0)])
    def test_rejects_degenerate_shapes(self, k, m, e):
        with pytest.raises(ValueError):
            make_dragonfly(k, m, endpoints_per_switch=e)

    def test_rejects_radix_beyond_port_blocks(self):
        # Huge K drives local degree past the config-space port cap.
        with pytest.raises(ValueError):
            make_dragonfly(MAX_PORT_BLOCKS + 2, 2)

    def test_ten_thousand_device_point(self):
        spec = make_dragonfly(16, 125, endpoints_per_switch=4)
        assert len(spec.switches) + len(spec.endpoints) == 10_000
        radix = spec.switches[0][1]
        assert radix <= MAX_PORT_BLOCKS
        spec.validate()


class TestFatTree2:
    def test_auto_design_minimizes_switch_count(self):
        spec = make_fat_tree2(1024)
        # Solnushkin-style auto-design: 32 edge + 32 core switches.
        edges = [n for n, _ in spec.switches if n.startswith("edge")]
        cores = [n for n, _ in spec.switches if n.startswith("core")]
        assert len(edges) == 32 and len(cores) == 32
        assert len(spec.endpoints) == 1024
        spec.validate()

    def test_every_core_connects_every_edge(self):
        spec = make_fat_tree2(64)
        adj = _switch_adjacency(spec)
        edges = {n for n, _ in spec.switches if n.startswith("edge")}
        cores = {n for n, _ in spec.switches if n.startswith("core")}
        for core in cores:
            assert adj[core] == edges

    def test_explicit_ports_and_blocking(self):
        spec = make_fat_tree2(16, switch_ports=8, blocking=2)
        # down=5, up=ceil(5/2)=3: 4 edge switches, 3 cores.
        edges = [n for n, _ in spec.switches if n.startswith("edge")]
        cores = [n for n, _ in spec.switches if n.startswith("core")]
        assert len(edges) == 4 and len(cores) == 3
        spec.validate()

    def test_name_round_trip(self):
        assert fat_tree2_name(1024) == "fattree2-1024"
        assert fat_tree2_name(16, switch_ports=8, blocking=2) \
            == "fattree2-16m8b2"
        assert parse_fat_tree2_name("fattree2-1024") == (1024, None, 1)
        assert parse_fat_tree2_name("fattree2-16m8b2") == (16, 8, 2)
        assert parse_fat_tree2_name("fattree4-2") is None
        spec = make_fat_tree2(16, switch_ports=8, blocking=2)
        assert parse_fat_tree2_name(spec.name) == (16, 8, 2)

    @pytest.mark.parametrize("n,kwargs", [
        (1, {}),
        (16, {"blocking": 0}),
        (16, {"switch_ports": 1}),
        (10 ** 6, {}),  # no two-layer design fits the port cap
    ])
    def test_rejects_impossible_designs(self, n, kwargs):
        with pytest.raises(ValueError):
            make_fat_tree2(n, **kwargs)


class TestRegistry:
    def test_canonicalizes_generator_names(self):
        assert canonical_topology_name(" DRAGONFLY-K4M8E1 ") \
            == "dragonfly-k4m8"
        assert canonical_topology_name("Fattree2-1024") == "fattree2-1024"

    def test_still_resolves_table1_aliases(self):
        assert canonical_topology_name("mesh9") == "3x3 mesh"

    def test_unknown_name_raises_with_guidance(self):
        with pytest.raises(ValueError, match="generator-family"):
            canonical_topology_name("hypercube-64")

    def test_resolves_each_family_to_a_spec(self):
        for name, family in [
            ("dragonfly-k2m3", "dragonfly"),
            ("fattree2-8", "fattree2"),
            ("mesh9", "mesh"),
        ]:
            spec = resolve_topology(name)
            assert spec.family == family
            spec.validate()

    def test_resolution_matches_direct_construction(self):
        direct = make_dragonfly(4, 8, endpoints_per_switch=2)
        resolved = resolve_topology("dragonfly-k4m8e2")
        assert resolved.links == direct.links
        assert resolved.switches == direct.switches
        assert resolved.endpoints == direct.endpoints


class TestDiscoveryOnGenerators:
    """Small end-to-end runs: the generated fabrics actually discover."""

    @pytest.mark.parametrize("name", ["dragonfly-k3m4", "fattree2-8"])
    def test_full_discovery_finds_everything(self, name):
        from repro.experiments.runner import (
            build_simulation,
            database_matches_fabric,
            run_until_ready,
        )

        spec = resolve_topology(name)
        setup = build_simulation(spec, algorithm="parallel")
        stats = run_until_ready(setup)
        assert stats.devices_found == len(setup.fabric.devices)
        assert database_matches_fabric(setup)
