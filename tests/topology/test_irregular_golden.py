"""Golden-identity check for the irregular generator's memory rewrite.

``make_irregular`` switched from materialized free-port lists to an
incremental port cursor; its output must be byte-identical for every
``(num_switches, extra_links, seed)``.  The fuzz corpus recorded the
exact pre-rewrite output of one spec (``irregular-6+2 (seed=7)``)
inside ``tests/corpus/change-607c6f5ba3d5.json`` — regenerating and
comparing pins the identity against history, not against ourselves.
(The corpus filename is content-addressed over the whole scenario
dict, so it changes whenever ``Scenario`` gains fields; the embedded
topology spec is carried over verbatim.)
"""

import json
from pathlib import Path

from repro.experiments.io import spec_to_dict
from repro.topology import make_irregular

CORPUS_ENTRY = (
    Path(__file__).parent.parent / "corpus" / "change-607c6f5ba3d5.json"
)


class TestIrregularGolden:
    def test_matches_corpus_recorded_spec(self):
        recorded = json.loads(CORPUS_ENTRY.read_text())
        recorded_spec = recorded["scenario"]["topology"]
        regenerated = spec_to_dict(
            make_irregular(6, extra_links=2, switch_ports=8, seed=7)
        )
        assert regenerated == recorded_spec

    def test_large_generation_is_deterministic(self):
        a = make_irregular(200, extra_links=80, switch_ports=16, seed=3)
        b = make_irregular(200, extra_links=80, switch_ports=16, seed=3)
        assert a.links == b.links
        a.validate()
