"""Unit and property tests for topology generators."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.topology import (
    TABLE1_NAMES,
    TopologySpec,
    make_fattree,
    make_irregular,
    make_mesh,
    make_torus,
    table1_rows,
    table1_suite,
    table1_topology,
)


def built_graph(spec):
    env = Environment()
    fabric = spec.build(env)
    fabric.power_up()
    return fabric.graph()


class TestSpecValidation:
    def test_duplicate_names_rejected(self):
        spec = TopologySpec(name="bad", switches=[("x", 4)], endpoints=["x"])
        with pytest.raises(ValueError, match="duplicate"):
            spec.validate()

    def test_unknown_link_device_rejected(self):
        spec = TopologySpec(
            name="bad", switches=[("a", 4)], endpoints=[],
            links=[("a", 0, "ghost", 0)],
        )
        with pytest.raises(ValueError, match="unknown device"):
            spec.validate()

    def test_port_out_of_range_rejected(self):
        spec = TopologySpec(
            name="bad", switches=[("a", 4), ("b", 4)],
            links=[("a", 4, "b", 0)],
        )
        with pytest.raises(ValueError, match="out of range"):
            spec.validate()

    def test_port_double_wiring_rejected(self):
        spec = TopologySpec(
            name="bad", switches=[("a", 4), ("b", 4), ("c", 4)],
            links=[("a", 0, "b", 0), ("a", 0, "c", 0)],
        )
        with pytest.raises(ValueError, match="wired twice"):
            spec.validate()

    def test_fm_host_must_be_endpoint(self):
        spec = TopologySpec(
            name="bad", switches=[("a", 4)], endpoints=["e"], fm_host="a"
        )
        with pytest.raises(ValueError, match="fm_host"):
            spec.validate()


class TestMesh:
    def test_counts(self):
        spec = make_mesh(3, 4)
        assert spec.num_switches == 12
        assert spec.num_endpoints == 12
        # links: endpoints (12) + horizontal (3*3) + vertical (2*4)
        assert len(spec.links) == 12 + 9 + 8

    def test_connected_and_degrees(self):
        g = built_graph(make_mesh(4, 4))
        assert nx.is_connected(g)
        switch_degrees = sorted(
            d for n, d in g.degree() if g.nodes[n]["kind"] == "switch"
        )
        # Corner switches: 2 neighbours + endpoint = 3; centre: 5.
        assert switch_degrees[0] == 3
        assert switch_degrees[-1] == 5

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            make_mesh(0, 3)
        with pytest.raises(ValueError):
            make_mesh(2, 2, switch_ports=4)

    def test_1xn_mesh_is_a_line(self):
        g = built_graph(make_mesh(1, 5))
        assert nx.is_connected(g)
        assert g.number_of_nodes() == 10


class TestTorus:
    def test_counts(self):
        spec = make_torus(4, 4)
        assert spec.num_switches == 16
        # links: endpoints (16) + 2 wrap rings per dimension (16 + 16)
        assert len(spec.links) == 16 + 16 + 16

    def test_all_switches_degree_5(self):
        g = built_graph(make_torus(4, 4))
        for node, degree in g.degree():
            if g.nodes[node]["kind"] == "switch":
                assert degree == 5  # 4 neighbours + endpoint

    def test_dimension_minimum(self):
        with pytest.raises(ValueError):
            make_torus(1, 4)

    def test_2x2_torus_double_links_are_legal(self):
        spec = make_torus(2, 2)
        spec.validate()
        g = built_graph(spec)
        assert nx.is_connected(g)


class TestFatTree:
    def test_4port_2tree_counts(self):
        spec = make_fattree(4, 2)
        assert spec.num_switches == 4
        assert spec.num_endpoints == 4

    def test_4port_3tree_counts(self):
        spec = make_fattree(4, 3)
        assert spec.num_switches == 12
        assert spec.num_endpoints == 8

    def test_8port_2tree_counts(self):
        spec = make_fattree(8, 2)
        assert spec.num_switches == 8
        assert spec.num_endpoints == 16

    def test_connected(self):
        for ports, levels in [(4, 2), (4, 3), (4, 4), (8, 2)]:
            g = built_graph(make_fattree(ports, levels))
            assert nx.is_connected(g), f"{ports}-port {levels}-tree"

    def test_leaf_switches_fully_loaded(self):
        spec = make_fattree(4, 3)
        g = built_graph(spec)
        leaf_switches = [n for n in g if n.startswith("sw_l0_")]
        for sw in leaf_switches:
            assert g.degree(sw) == 4  # 2 endpoints down + 2 up links

    def test_top_level_uses_only_down_ports(self):
        spec = make_fattree(4, 3)
        g = built_graph(spec)
        top = [n for n in g if n.startswith("sw_l2_")]
        for sw in top:
            assert g.degree(sw) == 2  # k down links, no up links

    def test_odd_port_count_rejected(self):
        with pytest.raises(ValueError):
            make_fattree(5, 2)

    def test_endpoints_spread_over_leaves(self):
        spec = make_fattree(8, 2)
        leaf_links = [l for l in spec.links if l[0].startswith("ep")]
        leaves = {l[2] for l in leaf_links}
        assert len(leaves) == 4  # k**(n-1) leaf switches
        # k endpoints per leaf.
        from collections import Counter

        counts = Counter(l[2] for l in leaf_links)
        assert set(counts.values()) == {4}


class TestIrregular:
    def test_deterministic_with_seed(self):
        a = make_irregular(10, extra_links=5, seed=42)
        b = make_irregular(10, extra_links=5, seed=42)
        assert a.links == b.links

    def test_connected(self):
        for seed in range(5):
            g = built_graph(make_irregular(12, extra_links=6, seed=seed))
            assert nx.is_connected(g)

    def test_extra_links_add_cycles(self):
        tree = make_irregular(10, extra_links=0, seed=1)
        cyclic = make_irregular(10, extra_links=5, seed=1)
        assert len(cyclic.links) > len(tree.links)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_irregular(0)

    def test_seed_must_be_an_explicit_integer(self):
        with pytest.raises(ValueError, match="explicit integer seed"):
            make_irregular(5, seed=None)
        with pytest.raises(ValueError, match="explicit integer seed"):
            make_irregular(5, seed="7")

    def test_default_seed_is_reproducible(self):
        assert make_irregular(6, extra_links=2).links == \
            make_irregular(6, extra_links=2, seed=0).links

    def test_name_records_the_generator_arguments(self):
        from repro.topology import parse_irregular_name
        spec = make_irregular(7, extra_links=3, seed=91)
        assert parse_irregular_name(spec.name) == (7, 3, 91)
        assert parse_irregular_name("irregular-4+1 (seed=-2)") == (4, 1, -2)

    def test_parse_rejects_foreign_names(self):
        from repro.topology import parse_irregular_name
        for name in ("3x3 mesh", "irregular", "irregular-4+1",
                     "irregular-4+1 (seed=x)"):
            assert parse_irregular_name(name) is None

    def test_parsed_name_regenerates_the_same_spec(self):
        from repro.topology import parse_irregular_name
        spec = make_irregular(8, extra_links=2, switch_ports=8, seed=13)
        n, e, s = parse_irregular_name(spec.name)
        again = make_irregular(n, extra_links=e, switch_ports=8, seed=s)
        assert again == spec

    def test_spec_document_round_trip_is_lossless(self):
        from repro.experiments.io import spec_from_dict, spec_to_dict
        spec = make_irregular(6, extra_links=2, switch_ports=8, seed=5)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_spec_document_json_round_trip_is_lossless(self):
        import json
        from repro.experiments.io import spec_from_dict, spec_to_dict
        spec = make_irregular(6, extra_links=2, switch_ports=8, seed=5)
        wire = json.loads(json.dumps(spec_to_dict(spec)))
        assert spec_from_dict(wire) == spec


class TestTable1:
    def test_all_names_build(self):
        suite = table1_suite()
        assert [s.name for s in suite] == TABLE1_NAMES

    def test_rows_match_construction(self):
        rows = table1_rows()
        by_name = {r["topology"]: r for r in rows}
        assert by_name["3x3 mesh"]["total_devices"] == 18
        assert by_name["8x8 mesh"]["total_devices"] == 128
        assert by_name["10x10 torus"]["total_devices"] == 200
        for row in rows:
            assert row["total_devices"] == row["switches"] + row["endpoints"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            table1_topology("17x17 hypertorus")

    def test_every_topology_is_connected(self):
        for spec in table1_suite():
            g = built_graph(spec)
            assert nx.is_connected(g), spec.name
            assert g.number_of_nodes() == spec.total_devices


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(2, 5),
    cols=st.integers(2, 5),
    wrap=st.booleans(),
)
def test_property_grid_topologies_always_connected(rows, cols, wrap):
    spec = make_torus(rows, cols) if wrap else make_mesh(rows, cols)
    g = built_graph(spec)
    assert nx.is_connected(g)
    assert g.number_of_nodes() == 2 * rows * cols
