"""CLI tests for ``repro serve``, ``repro topology``, and the
graceful-interrupt behaviour of the long-running commands."""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.cli import main

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class TestTopologyCommand:
    def test_list_all(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "3x3 mesh  (alias: mesh9)" in out
        assert "Generator families" in out
        assert "dragonfly-k{K}m{M}" in out

    def test_describe_alias(self, capsys):
        assert main(["topology", "mesh64"]) == 0
        out = capsys.readouterr().out
        assert "devices   : 128" in out
        assert "switches  : 64" in out
        assert "canonical : 8x8 mesh" in out

    def test_describe_generator_spec(self, capsys):
        assert main(["topology", "dragonfly-k4m8"]) == 0
        out = capsys.readouterr().out
        assert "family    : dragonfly" in out

    def test_unknown_name_exits_one(self, capsys):
        assert main(["topology", "not-a-fabric"]) == 1
        assert "unknown topology" in capsys.readouterr().err


class TestInterruptHandling:
    def test_fuzz_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.experiments.fuzz as fuzz_mod

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(fuzz_mod, "run_fuzz", boom)
        assert main(["fuzz", "--runs", "3"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_churn_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli_mod

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "sweep_churn", boom)
        assert main(["churn", "--topology", "mesh9",
                     "--faults", "1"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_other_commands_do_not_swallow_interrupt(self, monkeypatch):
        import repro.cli as cli_mod

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(
            cli_mod.main.__globals__, "_cmd_table1", boom)
        # table1 is not in INTERRUPTIBLE; Ctrl-C propagates as usual.
        monkeypatch.setattr(cli_mod, "_cmd_table1", boom)
        with pytest.raises(KeyboardInterrupt):
            main(["table1"])


def _spawn_serve(*extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--topology", "mesh9",
         "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    assert " on " in banner, f"unexpected banner: {banner!r}"
    address = banner.split(" on ")[1].split(",")[0].strip()
    host, port = address.rsplit(":", 1)
    proc.stdout.readline()  # the Ctrl-C hint line
    return proc, host, int(port)


class TestServeProcess:
    def test_sigint_graceful_exit_130(self):
        proc, host, port = _spawn_serve("--churn")
        try:
            with socket.create_connection((host, port), timeout=10) as s:
                stream = s.makefile("rwb")
                hello = json.loads(stream.readline())
                assert hello["schema"] == "repro/service/v1.1"
                stream.write(b'{"id": 1, "op": "status"}\n')
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] is True
            time.sleep(0.2)
            proc.send_signal(signal.SIGINT)
            output, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "interrupted: served" in output

    def test_shutdown_op_clean_exit_0(self):
        proc, host, port = _spawn_serve()
        try:
            with socket.create_connection((host, port), timeout=10) as s:
                stream = s.makefile("rwb")
                stream.readline()  # hello
                stream.write(b'{"id": 1, "op": "shutdown"}\n')
                stream.flush()
                response = json.loads(stream.readline())
                assert response["result"]["stopping"] is True
            output, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "shutdown: served" in output
