"""Live-service tests: real sockets, real threads, real churn.

The scenarios the daemon exists for: many concurrent clients querying
a moving fabric, mutations arriving over the wire and showing up on
the event stream, and the consistency auditor confirming the FM
reconverged afterwards.
"""

import threading
import time

import pytest

from repro.service import ServiceError, start_service

#: Concurrent clients for the hammer test (the ISSUE's floor is 8).
CLIENT_COUNT = 8


def _wait_for(client, predicate, timeout=60.0, interval=0.02):
    """Poll ``status`` until ``predicate(status)`` holds."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.request("status")
        if predicate(status):
            return status
        time.sleep(interval)
    raise AssertionError(f"timed out waiting; last status: {status}")


class TestHandshake:
    def test_hello_banner_and_ping(self):
        with start_service("mesh9") as handle:
            with handle.client() as client:
                assert client.hello["schema"] == "repro/service/v1.1"
                assert client.hello["topology"] == "3x3 mesh"
                assert client.request("ping")["schema"] == client.schema

    def test_unknown_op_keeps_connection_alive(self):
        with start_service("mesh9") as handle:
            with handle.client() as client:
                with pytest.raises(ServiceError) as err:
                    client.request("frobnicate")
                assert err.value.code == "unknown-op"
                assert client.request("ping")["schema"]

    def test_topologies_endpoint_matches_cli_registry(self):
        from repro.topology.registry import topology_catalog
        with start_service("mesh9") as handle:
            with handle.client() as client:
                result = client.request("topologies")
                assert result["catalog"] == topology_catalog()


class TestConcurrentClients:
    def test_eight_clients_hammer_churning_fabric(self):
        with start_service("mesh9", churn=True, seed=7) as handle:
            errors = []
            done = []

            def hammer(index):
                try:
                    with handle.client() as client:
                        for i in range(25):
                            op = ("status", "topology",
                                  "metrics")[i % 3]
                            result = client.request(op)
                            assert "sim_time" in result
                            if op == "topology":
                                for device in result["devices"]:
                                    assert set(device) == {
                                        "dsn", "type", "nports",
                                        "fm_capable"}
                    done.append(index)
                except Exception as exc:
                    errors.append(f"client {index}: {exc}")

            threads = [
                threading.Thread(target=hammer, args=(i,), daemon=True)
                for i in range(CLIENT_COUNT)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            assert len(done) == CLIENT_COUNT
            assert handle.service.connections_accepted >= CLIENT_COUNT
            # The sim actually advanced while serving.
            assert handle.driver.events_stepped > 0


class TestMutationRoundTrip:
    def test_hot_remove_streams_events_and_audits_clean(self):
        with start_service("mesh9") as handle:
            with handle.client() as client:
                client.subscribe()
                _wait_for(client, lambda s: s["ready"])
                removed = client.request("remove_device",
                                         name="sw_1_1")
                assert removed["removed"] == "sw_1_1"

                # The mutation itself is feed-visible...
                event = client.next_event(timeout=30)
                seen = {event["event"]}
                # ...and the FM notices via PI-5 and rediscovers.
                deadline = time.monotonic() + 60
                while ("pi5" not in seen
                       and time.monotonic() < deadline):
                    seen.add(client.next_event(timeout=30)["event"])
                assert "mutation" in seen
                assert "pi5" in seen

                status = _wait_for(
                    client,
                    lambda s: (s["discoveries"] >= 2
                               and not s["is_discovering"]),
                )
                # The switch and its now-unreachable endpoint are gone.
                assert status["devices_known"] == 16

                audit = client.request("audit")
                assert audit["ok"] is True
                assert audit["differences"] == 0

    def test_bad_mutation_reports_error(self):
        with start_service("mesh9") as handle:
            with handle.client() as client:
                with pytest.raises(ServiceError) as err:
                    client.request("remove_device", name="no_such")
                assert err.value.code == "bad-mutation"


class TestShutdown:
    def test_shutdown_op_stops_the_service(self):
        handle = start_service("mesh9")
        try:
            with handle.client() as client:
                assert client.request("shutdown")["stopping"] is True
            handle._thread.join(timeout=30)
            assert not handle._thread.is_alive()
            with pytest.raises(OSError):
                handle.client(timeout=2.0)
        finally:
            handle.stop()

    def test_stop_is_idempotent_and_stops_driver(self):
        handle = start_service("mesh9", churn=True)
        summary = handle.stop()
        assert handle.stop() == summary
        assert not handle.driver.running


class TestFailoverVerbs:
    def test_verbs_require_a_standby(self):
        with start_service("mesh9") as handle:
            with handle.client() as client:
                with pytest.raises(ServiceError) as err:
                    client.kill_fm()
                assert err.value.code == "no-standby"
                with pytest.raises(ServiceError) as err:
                    client.promote_standby()
                assert err.value.code == "no-standby"

    def test_kill_fm_triggers_takeover_and_streams_the_outcome(self):
        with start_service("mesh16", manager="partial",
                           standby="warm") as handle:
            with handle.client() as client:
                client.subscribe()
                _wait_for(client, lambda s: s["ready"])
                out = client.kill_fm()
                assert out["killed"]
                assert out["mode"] == "warm"
                event = client.next_event(timeout=60)
                while not (event.get("event") == "failover"
                           and event.get("phase") == "takeover_complete"):
                    event = client.next_event(timeout=60)
                assert event["fm"] == out["standby"]
                assert event["recovery_time"] > 0
                # The served FM is now the promoted standby; the fabric
                # it sees (minus the dead primary host) audits clean.
                status = _wait_for(
                    client, lambda s: s["ready"] and not s["is_discovering"]
                )
                assert status["devices_known"] > 0
                audit = client.request("audit")
                assert audit["ok"]
                # A second kill/promote is rejected: the standby is
                # already the active manager.
                with pytest.raises(ServiceError) as err:
                    client.promote_standby()
                assert err.value.code == "bad-mutation"
                with pytest.raises(ServiceError) as err:
                    client.kill_fm()
                assert err.value.code == "bad-mutation"

    def test_explicit_promote_without_a_kill(self):
        with start_service("mesh9", manager="partial",
                           standby="cold") as handle:
            with handle.client() as client:
                client.subscribe()
                _wait_for(client, lambda s: s["ready"])
                out = client.promote_standby()
                assert out["promoting"] is True
                event = client.next_event(timeout=60)
                while not (event.get("event") == "failover"
                           and event.get("phase") == "takeover_complete"):
                    event = client.next_event(timeout=60)
                assert event["mode"] == "cold"
                _wait_for(client, lambda s: s["ready"])
