"""Golden-response tests for the service API handlers.

These run the handlers in-process against a fully-discovered 3x3 mesh
(deterministic: no churn, no wall clock), so the response documents
are stable and can be asserted structurally — the JSON the wire would
carry, without the wire.
"""

import json

import pytest

from repro.experiments.runner import build_simulation, run_until_ready
from repro.service import api
from repro.service.driver import DriverStopped, SimulationDriver
from repro.topology.registry import (
    describe_topology,
    resolve_topology,
    topology_catalog,
)


@pytest.fixture(scope="module")
def ready_setup():
    setup = build_simulation(resolve_topology("mesh9"))
    run_until_ready(setup)
    return setup


@pytest.fixture(scope="module")
def driver(ready_setup):
    # Not started: handler tests call the functions directly, so the
    # sim state stays frozen at the post-discovery instant.
    return SimulationDriver(ready_setup)


def _json_roundtrip(document):
    """Every response must be plain-JSON serialisable."""
    return json.loads(json.dumps(document))


class TestStatus:
    def test_golden_shape(self, ready_setup, driver):
        result = _json_roundtrip(
            api.op_status(ready_setup, driver, {}))
        assert result["topology"] == "3x3 mesh"
        assert result["algorithm"] == "parallel"
        assert result["manager"] == "full"
        assert result["ready"] is True
        assert result["is_discovering"] is False
        assert result["discoveries"] == 1
        assert result["devices_known"] == 18
        assert result["last_discovery"]["devices_found"] == 18
        assert result["churn"] is None
        assert result["driver"]["crashed"] is None


class TestTopology:
    def test_golden_snapshot(self, ready_setup, driver):
        result = _json_roundtrip(
            api.op_topology(ready_setup, driver, {}))
        devices = result["devices"]
        assert len(devices) == 18
        kinds = [d["type"] for d in devices]
        assert kinds.count("switch") == 9
        assert kinds.count("endpoint") == 9
        assert devices == sorted(devices, key=lambda d: d["dsn"])
        # 3x3 mesh: 12 switch-switch links + 9 endpoint attachments.
        assert len(result["links"]) == 21
        dsns = {d["dsn"] for d in devices}
        for a_dsn, a_port, b_dsn, b_port in result["links"]:
            assert a_dsn in dsns and b_dsn in dsns
            assert (a_dsn, a_port) < (b_dsn, b_port)
        assert result["summary"]["devices"] == 18

    def test_matches_database(self, ready_setup, driver):
        result = api.op_topology(ready_setup, driver, {})
        db = ready_setup.fm.database
        assert {d["dsn"] for d in result["devices"]} == set(
            r.dsn for r in db.devices())


class TestPath:
    def test_endpoint_to_endpoint(self, ready_setup, driver):
        result = _json_roundtrip(api.op_topology(ready_setup, driver, {}))
        endpoints = [d["dsn"] for d in result["devices"]
                     if d["type"] == "endpoint"]
        path = _json_roundtrip(api.op_path(
            ready_setup, driver, {"src": endpoints[0],
                                  "dst": endpoints[-1]}))
        assert path["hops"][0] == endpoints[0]
        assert path["hops"][-1] == endpoints[-1]
        assert path["length"] == len(path["hops"]) - 1
        # Both endpoints hang off the mesh, so the FM programmed a
        # source route to the destination.
        assert path["fm_route"] is not None
        assert path["fm_route"]["hops"]

    def test_unknown_dsn(self, ready_setup, driver):
        with pytest.raises(api.ApiError) as err:
            api.op_path(ready_setup, driver,
                        {"src": 0xDEAD, "dst": 0xBEEF})
        assert err.value.code == "unknown-dsn"

    def test_bad_params(self, ready_setup, driver):
        with pytest.raises(api.ApiError) as err:
            api.op_path(ready_setup, driver, {"src": "ep_0_0"})
        assert err.value.code == "bad-request"


class TestMetrics:
    def test_scrape(self, ready_setup, driver):
        result = _json_roundtrip(api.op_metrics(ready_setup, driver, {}))
        names = set(result["metrics"])
        assert "service.events_stepped" in names
        assert "service.commands_run" in names
        assert result["metrics"]["service.events_stepped"]["value"] == 0


class TestTopologies:
    def test_catalog_and_describe(self, driver):
        result = _json_roundtrip(api.op_topologies(
            None, driver, {"describe": "mesh9"}))
        aliases = {e["alias"] for e in result["catalog"]["table1"]}
        assert "mesh9" in aliases and "torus100" in aliases
        assert result["described"]["devices"] == 18

    def test_unknown_describe(self, driver):
        with pytest.raises(api.ApiError) as err:
            api.op_topologies(None, driver, {"describe": "wat"})
        assert err.value.code == "unknown-topology"


class TestRegistryHelpers:
    def test_catalog_covers_table1(self):
        catalog = topology_catalog()
        assert len(catalog["table1"]) == 13
        assert catalog["families"]

    def test_describe_consistent_with_spec(self):
        info = describe_topology("mesh64")
        spec = resolve_topology("mesh64")
        assert info["devices"] == spec.total_devices
        assert info["switches"] == spec.num_switches
        assert info["links"] == len(spec.links)
        assert info["canonical"] == "8x8 mesh"

    def test_describe_unknown_raises(self):
        with pytest.raises(ValueError):
            describe_topology("not-a-topology")


class TestDispatch:
    def test_unknown_op(self):
        with pytest.raises(api.ApiError) as err:
            api.handler_for("frobnicate")
        assert err.value.code == "unknown-op"

    def test_call_op_runs_on_sim_thread(self, ready_setup):
        driver = SimulationDriver(ready_setup).start()
        try:
            status = api.call_op(driver, "status")
            assert status["devices_known"] == 18
            assert driver.commands_run >= 1
        finally:
            driver.stop()

    def test_stopped_driver_rejects(self, ready_setup):
        driver = SimulationDriver(ready_setup).start()
        driver.stop()
        with pytest.raises(DriverStopped):
            api.call_op(driver, "status")


class TestTrafficVerbs:
    """v1.1 verbs, run in-process against a private simulation (these
    mutate sim state, so the module-scoped fixture stays untouched)."""

    @pytest.fixture()
    def fresh(self):
        setup = build_simulation(resolve_topology("mesh9"))
        run_until_ready(setup)
        return setup, SimulationDriver(setup)

    def test_schema_is_v1_1(self, fresh):
        setup, driver = fresh
        assert api.SCHEMA == "repro/service/v1.1"
        ping = api.op_ping(setup, driver, {})
        assert ping["schema"] == "repro/service/v1.1"

    def test_stop_without_start(self, fresh):
        setup, driver = fresh
        with pytest.raises(api.ApiError) as err:
            api.op_stop_traffic(setup, driver, {})
        assert err.value.code == "no-traffic"

    def test_bad_specs_rejected(self, fresh):
        setup, driver = fresh
        for params in ({"load": 1.5}, {"load": 0.0}, {"tc": 9},
                       {"arrival": "diurnal"}, {"seed": "zero"}):
            with pytest.raises(api.ApiError) as err:
                api.op_start_traffic(setup, driver, params)
            assert err.value.code == "bad-request", params

    def test_lifecycle_and_metrics(self, fresh):
        setup, driver = fresh
        started = _json_roundtrip(api.op_start_traffic(
            setup, driver,
            {"load": 0.4, "packet_bytes": 128, "seed": 2, "id": 1},
        ))
        assert started["running"] is True
        assert started["spec"]["load"] == 0.4
        with pytest.raises(api.ApiError) as err:
            api.op_start_traffic(setup, driver, {"load": 0.2})
        assert err.value.code == "traffic-running"
        # Advance the (single-threaded, unstarted-driver) sim directly.
        setup.env.run(until=setup.env.now + 5e-4)
        metrics = _json_roundtrip(
            api.op_metrics(setup, driver, {}))["metrics"]
        assert metrics["traffic.offered_load"]["value"] == 0.4
        assert metrics["traffic.packets_injected"]["value"] > 0
        stopped = _json_roundtrip(api.op_stop_traffic(setup, driver, {}))
        assert stopped["stopped"] is True
        assert stopped["stats"]["packets_injected"] > 0
        # A stopped workload can be replaced by a new one.
        again = api.op_start_traffic(setup, driver, {"load": 0.1})
        assert again["running"] is True
