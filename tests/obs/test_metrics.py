"""Tests for the typed metrics registry."""

import pytest

from repro.obs import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.sim.monitor import Counter


class TestCounterMetric:
    def test_increments_accumulate(self):
        metric = CounterMetric("requests")
        metric.inc()
        metric.inc(4)
        assert metric.value == 5
        assert metric.asdict() == {"type": "counter", "value": 5}

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            CounterMetric("requests").inc(-1)


class TestGaugeMetric:
    def test_set_overwrites(self):
        metric = GaugeMetric("depth")
        metric.set(3.0)
        metric.set(1.5)
        assert metric.value == 1.5
        assert metric.asdict() == {"type": "gauge", "value": 1.5}

    def test_record_keeps_time_series(self):
        metric = GaugeMetric("depth")
        metric.record(0.0, 1.0)
        metric.record(1.0, 4.0)
        assert metric.value == 4.0
        assert metric.asdict()["samples"] == 2


class TestHistogramMetric:
    def test_buckets_are_cumulative_style_le(self):
        metric = HistogramMetric("t", buckets=(1.0, 10.0))
        for x in (0.5, 1.0, 5.0, 100.0):
            metric.observe(x)
        doc = metric.asdict()
        assert doc["n"] == 4
        # counts[i] observes x <= buckets[i]; overflow catches the rest.
        assert doc["buckets"] == {"le_1": 2, "le_10": 1}
        assert doc["overflow"] == 1
        assert doc["min"] == 0.5
        assert doc["max"] == 100.0

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError):
            HistogramMetric("t", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_value_defaults_to_zero_for_absent_metric(self):
        assert MetricsRegistry().value("nope") == 0

    def test_collect_is_sorted_and_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.0)
        collected = registry.collect()
        assert list(collected) == ["a", "b"]
        json.dumps(collected)  # must not raise

    def test_scrape_counter_snapshots_once(self):
        raw = Counter()
        raw.incr("tx", 3)
        registry = MetricsRegistry()
        registry.scrape_counter(raw, "port")
        raw.incr("tx", 10)  # after the scrape: not reflected
        assert registry.value("port.tx") == 3

    def test_observe_counter_mirrors_live(self):
        raw = Counter()
        registry = MetricsRegistry()
        registry.observe_counter(raw, "port")
        raw.incr("tx", 2)
        raw.incr("rx")
        assert registry.value("port.tx") == 2
        assert registry.value("port.rx") == 1

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("fm.pi5").inc()
        registry.histogram("fm.t").observe(1e-4)
        text = registry.render(title="metrics")
        assert "fm.pi5" in text
        assert "fm.t" in text
