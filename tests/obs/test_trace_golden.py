"""Golden determinism tests for the observability layer.

Two contracts are pinned here:

1. **Tracing never perturbs the simulation.** A traced run's discovery
   times and per-device stats digest are bit-identical to the untraced
   goldens captured in ``tests/experiments/test_determinism.py`` — the
   tracer pays only ``is not None`` checks, schedules no events, and
   touches no RNG.
2. **Trace export is byte-stable.** The same seed-0 scenario exports
   the exact same Chrome-trace bytes every run, so trace files can be
   diffed and archived like any other experiment artifact.
"""

import hashlib
import json

from repro.experiments import Scenario
from repro.experiments.runner import build_simulation, run_until_ready
from repro.obs import (
    TraceSession,
    chrome_trace_document,
    discovery_phase_breakdown,
    discovery_spans,
    dump_chrome_trace,
    validate_chrome_trace,
)
from repro.topology import make_mesh

# Pinned by tests/experiments/test_determinism.py (captured pre-PR 3).
GOLDEN_STATS_DIGEST = (
    "3abd0da75341d125d8ab7cc851e55aaf492f2445d0d632fe2ee0955e426aed29"
)
GOLDEN_PARALLEL_TIME = 0.0023844740000000058


def _digest(fabric) -> str:
    snap = {}
    for name in sorted(fabric.devices):
        dev = fabric.devices[name]
        snap[name] = dev.stats.asdict()
        for port in dev.ports:
            stats = port.stats.asdict()
            if stats:
                snap[f"{name}.p{port.index}"] = stats
    payload = json.dumps(snap, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestTracingDoesNotPerturb:
    def test_traced_discovery_matches_untraced_goldens(self):
        session = TraceSession()
        setup = build_simulation(make_mesh(3, 3), algorithm="parallel",
                                 tracer=session)
        stats = run_until_ready(setup)
        session.finalize(setup)
        assert stats.discovery_time == GOLDEN_PARALLEL_TIME
        assert _digest(setup.fabric) == GOLDEN_STATS_DIGEST
        assert len(session.spans) > 0
        assert len(session.packets) > 0

    def test_traced_change_experiment_matches_untraced_golden(self):
        scenario = Scenario(kind="change", topology="mesh9", seed=0)
        untraced = scenario.run().asdict()
        traced = scenario.run(tracer=TraceSession()).asdict()
        assert traced == untraced
        # The fig-6 seed-0 golden (test_determinism.py) holds traced.
        assert traced["discovery_time"] == 0.0021016489999999993
        assert traced["packets"] == 312
        assert traced["changed_device"] == "sw_2_1"


class TestGoldenTraceExport:
    """The seed-0 fig-6 scenario on the 3x3 mesh."""

    SCENARIO = Scenario(kind="change", topology="mesh9", seed=0)

    def _export(self):
        session = TraceSession()
        self.SCENARIO.run(tracer=session)
        return session, dump_chrome_trace(
            chrome_trace_document(session, label="golden")
        )

    def test_export_is_byte_stable(self):
        _, first = self._export()
        _, second = self._export()
        assert first == second

    def test_span_tree_well_formed_and_schema_valid(self):
        session, payload = self._export()
        assert session.spans.validate() == []
        assert session.meta["unfinished_spans"] == 0
        assert validate_chrome_trace(json.loads(payload)) == []

    def test_breakdown_covers_discovery_and_sums_exactly(self):
        session, _ = self._export()
        tops = discovery_spans(session.spans)
        assert len(tops) == 2  # initial discovery + change assimilation
        for top in tops:
            row = discovery_phase_breakdown(session.spans, top)
            assert row["total"] == top.duration
            # Exact-sum construction: the columns total the reported
            # discovery time with no residue.
            assert (row["claim"] + row["port_read"] + row["other"]
                    == row["total"])
            # Acceptance bar: the span tree attributes >= 95% of the
            # discovery window to a concrete protocol phase.
            assert row["coverage"] >= 0.95
        assert tops[0].args["trigger"] == "initial"
        assert tops[1].args["trigger"] == "change"
