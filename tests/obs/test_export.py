"""Tests for the timeline exporters and the packet flight recorder."""

import json

import pytest

from repro.obs import (
    PacketFlightRecorder,
    TraceSession,
    chrome_trace_document,
    dump_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


class _FakeEnv:
    def __init__(self, now=0.0):
        self.now = now


class _FakeDevice:
    def __init__(self, name, env):
        self.name = name
        self.env = env


class _FakeHeader:
    def __init__(self, pi):
        self.pi = pi


class _FakePacket:
    def __init__(self, pkt_id, pi=4):
        self.pkt_id = pkt_id
        self.header = _FakeHeader(pi)


def _session():
    """A small synthetic session: one serial span, one async child,
    one instant, one packet hop, one metric."""
    session = TraceSession()
    spans = session.spans
    root = spans.begin("discovery:parallel", "discovery", 0.0,
                       track="fm", algorithm="parallel")
    child = spans.begin("claim", "discovery", 1e-4, parent=root,
                        track="pi4", target="sw_0_0")
    spans.instant("retry", "pi4", 2e-4, parent=child, track="pi4")
    spans.end(child, 3e-4, outcome="ok")
    spans.end(root, 5e-4, devices=2)
    env = _FakeEnv(now=1.5e-4)
    session.packets(
        "tx", _FakeDevice("sw_0_0", env), 1, _FakePacket(7), "vc0"
    )
    session.metrics.counter("fm.pi5").inc(3)
    session.meta["topology"] = "synthetic"
    return session


class TestChromeTraceDocument:
    def test_document_structure(self):
        doc = chrome_trace_document(_session(), label="unit")
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        # Metadata (process + one thread per track), X for the serial
        # span, b/e for the async child, i for instant + packet hop,
        # C for the counter metric.
        assert phases.count("M") == 4  # process, fm, pi4, dev:sw_0_0
        assert phases.count("X") == 1
        assert phases.count("b") == 1
        assert phases.count("e") == 1
        assert phases.count("i") == 2
        assert phases.count("C") == 1
        assert doc["otherData"]["topology"] == "synthetic"

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace_document(_session())
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x_events[0]["ts"] == 0.0
        assert x_events[0]["dur"] == pytest.approx(500.0)  # 5e-4 s

    def test_validator_accepts_own_output(self):
        assert validate_chrome_trace(chrome_trace_document(_session())) == []

    def test_dump_is_byte_stable(self):
        assert (dump_chrome_trace(chrome_trace_document(_session()))
                == dump_chrome_trace(chrome_trace_document(_session())))

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        document = write_chrome_trace(_session(), path, label="unit")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(dump_chrome_trace(document))


class TestValidator:
    def test_rejects_unknown_phase(self):
        problems = validate_chrome_trace(
            [{"ph": "Z", "pid": 1, "ts": 0, "name": "x"}]
        )
        assert any("unknown phase" in p for p in problems)

    def test_rejects_async_end_without_begin(self):
        problems = validate_chrome_trace([
            {"ph": "e", "pid": 1, "ts": 0, "name": "x", "id": "0x1",
             "cat": "c"},
        ])
        assert any("without begin" in p for p in problems)

    def test_rejects_unclosed_async_begin(self):
        problems = validate_chrome_trace([
            {"ph": "b", "pid": 1, "ts": 0, "name": "x", "id": "0x1",
             "cat": "c"},
        ])
        assert any("never ended" in p for p in problems)

    def test_rejects_x_without_duration(self):
        problems = validate_chrome_trace(
            [{"ph": "X", "pid": 1, "ts": 0, "name": "x"}]
        )
        assert any("dur" in p for p in problems)

    def test_rejects_non_document(self):
        assert validate_chrome_trace(42)
        assert validate_chrome_trace({"events": []})


class TestJsonl:
    def test_writes_meta_body_and_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = write_jsonl(_session(), path, label="unit")
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == lines
        assert records[0]["type"] == "meta"
        assert records[0]["label"] == "unit"
        assert records[-1]["type"] == "metrics"
        kinds = {record["type"] for record in records}
        assert kinds == {"meta", "span", "instant", "packet", "metrics"}


class TestPacketFlightRecorder:
    def test_records_hop_fields(self):
        recorder = PacketFlightRecorder()
        env = _FakeEnv(now=2.5)
        recorder("rx", _FakeDevice("ep_0", env), 3, _FakePacket(9, pi=5))
        hop = recorder.hops[0]
        assert (hop.time, hop.kind, hop.device, hop.port) == \
            (2.5, "rx", "ep_0", 3)
        assert (hop.packet_id, hop.pi) == (9, 5)
        assert recorder.devices() == ["ep_0"]
        assert recorder.counts() == {"rx": 1}

    def test_overflow_is_counted_not_silent(self):
        recorder = PacketFlightRecorder(limit=1)
        env = _FakeEnv()
        device = _FakeDevice("sw", env)
        recorder("tx", device, 0, _FakePacket(1))
        recorder("tx", device, 0, _FakePacket(2))
        assert len(recorder) == 1
        assert recorder.overflowed == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PacketFlightRecorder(limit=0)
