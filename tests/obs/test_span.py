"""Tests for the span tracer: recording, nesting, validation."""

import pytest

from repro.obs import SpanTracer


class TestRecording:
    def test_begin_end_records_interval(self):
        tracer = SpanTracer()
        span = tracer.begin("discovery", "discovery", 1.0, algorithm="x")
        tracer.end(span, 3.5, devices=4)
        assert span.start == 1.0
        assert span.end == 3.5
        assert span.duration == 2.5
        assert span.args == {"algorithm": "x", "devices": 4}

    def test_end_is_idempotent(self):
        tracer = SpanTracer()
        span = tracer.begin("s", "c", 0.0)
        tracer.end(span, 1.0)
        tracer.end(span, 9.0, late=True)
        assert span.end == 1.0
        assert "late" not in span.args

    def test_duration_of_open_span_raises(self):
        tracer = SpanTracer()
        span = tracer.begin("s", "c", 0.0)
        with pytest.raises(ValueError):
            span.duration

    def test_parent_links_by_sid(self):
        tracer = SpanTracer()
        parent = tracer.begin("outer", "c", 0.0)
        child = tracer.begin("inner", "c", 1.0, parent=parent)
        assert child.parent == parent.sid
        assert tracer.children_of(parent) == [child]

    def test_sequence_numbers_are_global_and_monotonic(self):
        tracer = SpanTracer()
        a = tracer.begin("a", "c", 0.0)
        event = tracer.instant("i", "c", 0.5)
        b = tracer.begin("b", "c", 1.0, parent=a)
        tracer.end(b, 2.0)
        tracer.end(a, 3.0)
        seqs = [a.seq_begin, event.seq, b.seq_begin, b.seq_end, a.seq_end]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_find_filters_by_name_and_cat(self):
        tracer = SpanTracer()
        a = tracer.begin("claim", "discovery", 0.0)
        b = tracer.begin("claim", "other", 1.0)
        tracer.begin("port_read", "discovery", 2.0)
        assert tracer.find(name="claim") == [a, b]
        assert tracer.find(name="claim", cat="discovery") == [a]
        assert len(tracer.find(cat="discovery")) == 2

    def test_finish_closes_dangling_spans(self):
        tracer = SpanTracer()
        closed = tracer.begin("done", "c", 0.0)
        tracer.end(closed, 1.0)
        open_a = tracer.begin("a", "c", 2.0)
        open_b = tracer.begin("b", "c", 3.0)
        assert tracer.open_count == 2
        assert tracer.finish(9.0) == 2
        assert tracer.open_count == 0
        for span in (open_a, open_b):
            assert span.end == 9.0
            assert span.args["unfinished"] is True
        assert "unfinished" not in closed.args
        assert tracer.finish(10.0) == 0


class TestValidate:
    def test_clean_tree_has_no_problems(self):
        tracer = SpanTracer()
        root = tracer.begin("root", "c", 0.0, track="fm")
        child = tracer.begin("child", "c", 1.0, parent=root, track="pi4")
        tracer.end(child, 2.0)
        tracer.end(root, 3.0)
        assert tracer.validate() == []

    def test_open_span_reported(self):
        tracer = SpanTracer()
        tracer.begin("open", "c", 0.0)
        assert any("never closed" in p for p in tracer.validate())

    def test_negative_duration_reported(self):
        tracer = SpanTracer()
        span = tracer.begin("bad", "c", 5.0)
        tracer.end(span, 1.0)
        assert any("negative duration" in p for p in tracer.validate())

    def test_child_outside_parent_reported(self):
        tracer = SpanTracer()
        parent = tracer.begin("parent", "c", 0.0)
        child = tracer.begin("child", "c", 1.0, parent=parent)
        tracer.end(parent, 2.0)
        tracer.end(child, 5.0)
        assert any("outside parent" in p for p in tracer.validate())

    def test_serial_track_overlap_reported(self):
        tracer = SpanTracer()
        a = tracer.begin("a", "c", 0.0, track="fm")
        b = tracer.begin("b", "c", 1.0, track="fm")
        tracer.end(a, 2.0)
        tracer.end(b, 3.0)
        assert any("overlaps" in p for p in tracer.validate())

    def test_concurrent_track_overlap_allowed(self):
        tracer = SpanTracer()
        a = tracer.begin("a", "c", 0.0, track="pi4")
        b = tracer.begin("b", "c", 1.0, track="pi4")
        tracer.end(a, 2.0)
        tracer.end(b, 3.0)
        assert tracer.validate() == []

    def test_touching_spans_on_serial_track_allowed(self):
        tracer = SpanTracer()
        a = tracer.begin("a", "c", 0.0, track="fm")
        tracer.end(a, 1.0)
        b = tracer.begin("b", "c", 1.0, track="fm")
        tracer.end(b, 2.0)
        assert tracer.validate() == []
