"""Tests for the bounded restart/repair policy and convergence guard."""

import pytest

from repro.experiments.churn import run_until_quiescent
from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from repro.manager import PARALLEL, DiscoveryAborted
from repro.topology import make_mesh


def remove_mid_walk(setup, victim):
    """Kill ``victim`` the instant the walker claims it.

    At that point its general-info read has answered but its port
    reads are still ahead — they will all time out, which is exactly
    the "retries exhausted on an already-claimed branch" failure class
    the restart policy exists for.
    """
    env = setup.env
    dsn = setup.fabric.device(victim).dsn
    guard = 0
    while dsn not in setup.fm.database and guard < 100_000:
        env.step()
        guard += 1
    assert dsn in setup.fm.database, "walker never reached the victim"
    setup.fabric.remove_device(victim)


class TestSuspectClassification:
    def test_mid_walk_death_marks_subtree_suspect(self):
        setup = build_simulation(make_mesh(4, 4), algorithm=PARALLEL)
        remove_mid_walk(setup, "sw_2_2")
        run_until_quiescent(setup)
        first = setup.fm.history[0]
        assert first.suspect_subtrees >= 1
        assert not first.aborted

    def test_policy_converges_within_budget(self):
        setup = build_simulation(make_mesh(4, 4), algorithm=PARALLEL)
        remove_mid_walk(setup, "sw_2_2")
        stats = run_until_quiescent(setup)
        assert not stats.aborted
        assert setup.fm.counters["discovery_restarts"] >= 1
        assert setup.fm.counters["discovery_aborted"] == 0
        assert database_matches_fabric(setup)

    def test_stats_asdict_carries_new_fields(self):
        setup = build_simulation(make_mesh(3, 3), algorithm=PARALLEL)
        stats = run_until_ready(setup)
        info = stats.asdict()
        assert info["suspect_subtrees"] == 0
        assert info["serial_mismatches"] == 0
        assert info["aborted"] is False


class TestBoundedRestarts:
    def test_zero_budget_surfaces_abort_instead_of_hanging(self):
        setup = build_simulation(make_mesh(4, 4), algorithm=PARALLEL,
                                 max_discovery_restarts=0)
        remove_mid_walk(setup, "sw_2_2")
        with pytest.raises(DiscoveryAborted):
            run_until_quiescent(setup)
        stats = setup.fm.history[-1]
        assert stats.aborted
        assert setup.fm.counters["discovery_aborted"] == 1
        # The run still terminated: ready fired, nothing is in flight.
        assert setup.fm.ready_event.triggered
        assert not setup.fm.is_discovering

    def test_raise_on_abort_false_returns_the_stats(self):
        setup = build_simulation(make_mesh(4, 4), algorithm=PARALLEL,
                                 max_discovery_restarts=0)
        remove_mid_walk(setup, "sw_2_2")
        stats = run_until_quiescent(setup, raise_on_abort=False)
        assert stats.aborted

    def test_external_event_resets_the_streak(self):
        setup = build_simulation(make_mesh(4, 4), algorithm=PARALLEL)
        remove_mid_walk(setup, "sw_2_2")
        run_until_quiescent(setup)
        assert setup.fm._restart_streak == 0
        # A later, clean change assimilation starts from a full budget.
        setup.fabric.restore_device("sw_2_2")
        run_until_quiescent(setup)
        assert database_matches_fabric(setup)
        assert setup.fm._restart_streak == 0


class TestRestartBackoff:
    def test_backoff_delays_the_automatic_restart(self):
        delay = 5e-3
        setup = build_simulation(make_mesh(4, 4), algorithm=PARALLEL,
                                 restart_backoff=delay)
        remove_mid_walk(setup, "sw_2_2")
        run_until_quiescent(setup)
        fm = setup.fm
        assert len(fm.history) >= 2
        # First automatic restart waits the base backoff (2**0 * delay).
        gap = fm.history[1].started_at - fm.history[0].finished_at
        assert gap >= delay
        assert database_matches_fabric(setup)


class TestConvergenceGuard:
    def test_guard_probes_sampled_devices_after_clean_run(self):
        setup = build_simulation(make_mesh(4, 4), algorithm=PARALLEL,
                                 verify_sample=3, verify_seed=7)
        stats = run_until_ready(setup)
        fm = setup.fm
        assert fm.counters["guard_probes"] == 3
        assert fm.counters["guard_mismatches"] == 0
        assert not stats.aborted
        assert fm._restart_streak == 0
        assert database_matches_fabric(setup)

    def test_guard_mismatch_triggers_bounded_restart(self):
        setup = build_simulation(make_mesh(3, 3), algorithm=PARALLEL)
        run_until_ready(setup)
        fm = setup.fm
        stats = fm.history[-1]
        victim = next(
            record.dsn for record in fm.database.devices()
            if record.ingress_port is not None
        )
        fm._guard_settled(stats, {victim})
        assert fm.counters["guard_mismatches"] == 1
        # The mismatch consumed one budget slot and relaunched at once
        # (no backoff configured).
        assert fm._restart_streak == 1
        assert fm.is_discovering
        run_until_quiescent(setup)
        assert database_matches_fabric(setup)

    def test_guard_disabled_by_default(self):
        setup = build_simulation(make_mesh(3, 3), algorithm=PARALLEL)
        run_until_ready(setup)
        assert setup.fm.counters["guard_probes"] == 0


class TestPartialMidAssimilation:
    def test_target_removed_mid_assimilation_recovers(self):
        setup = build_simulation(make_mesh(4, 4), manager="partial")
        run_until_ready(setup)
        fm, env, fabric = setup.fm, setup.env, setup.fabric
        victim = "sw_2_2"

        fabric.remove_device(victim)
        run_until_quiescent(setup)
        assert database_matches_fabric(setup)

        # Hot-add the switch back; step until the up-burst's region
        # exploration is walking toward it, then yank it again.  The
        # in-flight reads into the region die and the manager must
        # repair or fall back to a full rediscovery — never hang.
        fabric.restore_device(victim)
        guard = 0
        while fm._region is None and guard < 200_000:
            env.step()
            guard += 1
        assert fm._region is not None, "region exploration never started"
        fabric.remove_device(victim)

        stats = run_until_quiescent(setup)
        assert not stats.aborted
        assert database_matches_fabric(setup)
        # The recovery took at least one automatic action (repair
        # burst, restart, or fallback full walk).
        recovery = (
            fm.counters["subtree_repairs"]
            + fm.counters["discovery_restarts"]
            + fm.counters["partial_fallbacks"]
        )
        assert recovery >= 1

    def test_repair_prefers_partial_machinery(self):
        # Force the repair path directly: mark a healthy subtree
        # suspect after a converged run and let the policy resolve it.
        setup = build_simulation(make_mesh(3, 3), manager="partial")
        run_until_ready(setup)
        fm = setup.fm
        suspect = next(
            record.dsn for record in fm.database.devices()
            if record.ingress_port is not None
            and any(
                port.up and index != record.ingress_port
                for index, port in record.ports.items()
            )
        )
        assert fm._resolve_inconsistency({suspect}, fm.history[-1])
        assert fm.is_assimilating  # a repair burst, not a full walk
        assert fm.counters["subtree_repairs"] == 1
        run_until_quiescent(setup)
        assert database_matches_fabric(setup)
        repair = next(
            s for s in fm.history if s.trigger == "repair"
        )
        assert repair.algorithm == "partial"
