"""Unit tests for fabric-manager internals: tags, timers, events."""

import pytest

from repro.capability import BASELINE_CAP_ID, EVENT_ROUTE_CAP_ID
from repro.experiments.runner import (
    build_simulation,
    run_until_discovery_count,
    run_until_ready,
)
from repro.manager import PARALLEL, SERIAL_PACKET
from repro.protocols import pi4, pi5
from repro.routing.turnpool import build_turn_pool
from repro.topology import make_mesh


@pytest.fixture
def setup():
    return build_simulation(make_mesh(2, 2), algorithm=PARALLEL,
                            auto_start=False)


class TestRequestLayer:
    def test_tags_are_unique_and_rewritten(self, setup):
        fm = setup.fm
        seen = []
        pool = build_turn_pool([])
        for _ in range(5):
            tag = fm.send_request(
                pi4.ReadRequest(cap_id=BASELINE_CAP_ID, offset=0, tag=999),
                pool, None, callback=lambda c, x: seen.append(c),
            )
            assert tag not in seen
        setup.env.run()
        assert len(seen) == 5
        tags = {c.tag for c in seen}
        assert len(tags) == 5
        assert 999 not in tags  # caller-supplied tag was replaced

    def test_per_request_timeout_override(self, setup):
        fm = setup.fm
        setup.fabric.fail_link("ep_0_0", "sw_0_0")
        setup.env.run()
        results = []
        pool = build_turn_pool([])
        fm.send_request(
            pi4.ReadRequest(cap_id=BASELINE_CAP_ID, offset=0, tag=0),
            pool, 0, callback=lambda c, x: results.append((c, setup.env.now)),
            retries=0, timeout=0.2e-3,
        )
        setup.env.run()
        assert results == [(None, pytest.approx(0.2e-3, rel=0.01))]

    def test_retries_escalate_then_give_up(self, setup):
        fm = setup.fm
        setup.fabric.fail_link("ep_0_0", "sw_0_0")
        setup.env.run()
        results = []
        pool = build_turn_pool([])
        fm.send_request(
            pi4.ReadRequest(cap_id=BASELINE_CAP_ID, offset=0, tag=0),
            pool, 0, callback=lambda c, x: results.append(setup.env.now),
            retries=2, timeout=0.1e-3,
        )
        setup.env.run()
        # Give-up after (retries + 1) timeout periods.
        assert results == [pytest.approx(0.3e-3, rel=0.01)]
        assert fm.counters["retries"] == 2
        assert fm.counters["timeouts"] == 1

    def test_stale_completion_counted_not_crashing(self, setup):
        """A completion whose tag is unknown is counted and dropped."""
        fm = setup.fm
        from repro.fabric.packet import Packet, make_management_header

        header = make_management_header(0, 0, pi=4, direction=1)
        orphan = Packet(
            header=header,
            payload=pi4.ReadCompletion(cap_id=0, offset=0, tag=424242,
                                       data=(1,)).pack(),
        )
        fm.handle_management_packet(orphan, None)
        assert fm.counters["stale_completions"] == 1

    def test_unexpected_request_to_manager_counted(self, setup):
        fm = setup.fm
        from repro.fabric.packet import Packet, make_management_header

        header = make_management_header(0, 0, pi=4)
        packet = Packet(
            header=header,
            payload=pi4.ReadRequest(cap_id=0, offset=0, tag=1).pack(),
        )
        fm.handle_management_packet(packet, None)
        assert fm.counters["unexpected_requests"] == 1


class TestEventHandling:
    def test_stale_event_is_ignored(self, setup):
        setup.fm.start_discovery()
        run_until_ready(setup)
        # Report a state the database already holds.
        sw = setup.fabric.device("sw_0_0")
        setup.fm._handle_event(
            pi5.PortEvent(reporter_dsn=sw.dsn, port=4, up=True, seq=7)
        )
        assert setup.fm.counters["events_stale"] == 1
        assert not setup.fm.is_discovering

    def test_event_during_discovery_is_deferred_to_running_run(self, setup):
        setup.fm.start_discovery()
        sw = setup.fabric.device("sw_0_0")
        setup.fm._handle_event(
            pi5.PortEvent(reporter_dsn=sw.dsn, port=9, up=False, seq=1)
        )
        assert setup.fm.counters["events_during_discovery"] == 1

    def test_events_before_enable_ignored(self, setup):
        # Power-up already delivered the FM's own port-up event.
        before = setup.fm.counters["events_before_enable"]
        sw = setup.fabric.device("sw_0_0")
        setup.fm._handle_event(
            pi5.PortEvent(reporter_dsn=sw.dsn, port=0, up=False, seq=1)
        )
        assert setup.fm.counters["events_before_enable"] == before + 1
        assert not setup.fm.is_discovering


class TestEventRouteProgramming:
    def test_every_device_gets_a_working_event_route(self, setup):
        setup.fm.start_discovery()
        run_until_ready(setup)
        fm_dsn = setup.fm.endpoint.dsn
        for name, device in setup.fabric.devices.items():
            if device.dsn == fm_dsn:
                continue
            cap = device.config_space.capability(EVENT_ROUTE_CAP_ID)
            assert cap.get_route() is not None, name

    def test_event_routes_deliver_from_every_device(self, setup):
        """Force a PI-5 from each device and verify FM reception."""
        setup.fm.start_discovery()
        run_until_ready(setup)
        fm = setup.fm
        received_before = fm.counters["pi5_received"]
        reporters = 0
        for name, entity in setup.entities.items():
            device = entity.device
            if device is fm.endpoint:
                continue
            entity.report_port_event(device.ports[0], up=True)
            reporters += 1
        setup.env.run(until=setup.env.now + 1e-3)
        assert fm.counters["pi5_received"] - received_before == reporters

    def test_disable_event_route_programming(self):
        alt = build_simulation(make_mesh(2, 2), algorithm=PARALLEL,
                               auto_start=False,
                               program_event_routes=False)
        alt.fm.start_discovery()
        run_until_ready(alt)
        sw = alt.fabric.device("sw_0_0")
        cap = sw.config_space.capability(EVENT_ROUTE_CAP_ID)
        assert cap.get_route() is None


class TestHistoryAndStats:
    def test_history_accumulates_in_order(self, setup):
        setup.fm.start_discovery()
        run_until_ready(setup)
        setup.fabric.remove_device("sw_1_1")
        run_until_discovery_count(setup, 2)
        history = setup.fm.history
        assert len(history) == 2
        assert history[0].trigger == "initial"
        assert history[1].trigger == "change"
        assert history[1].started_at > history[0].finished_at

    def test_last_stats_requires_a_run(self, setup):
        with pytest.raises(RuntimeError):
            setup.fm.last_stats()

    def test_mean_processing_time_requires_packets(self, setup):
        with pytest.raises(RuntimeError):
            setup.fm.mean_processing_time()

    def test_non_fm_capable_endpoint_rejected(self):
        from repro.manager import FabricManager
        from repro.protocols import ManagementEntity
        from repro.sim import Environment
        from repro.fabric import Fabric

        env = Environment()
        fabric = Fabric(env)
        ep = fabric.add_endpoint("ep", fm_capable=False)
        entity = ManagementEntity(ep)
        with pytest.raises(ValueError, match="not FM capable"):
            FabricManager(ep, entity)
