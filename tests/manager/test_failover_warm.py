"""Warm standby mechanics: mirror upkeep, promotion, and fencing.

The experiment-level behaviour (warm beats cold, fencing duel after a
resurrection) lives in ``tests/experiments/test_failover.py``; these
tests poke the :class:`~repro.manager.failover.StandbyManager` and the
FM's ownership fencing directly.
"""

from repro.experiments.failover import build_failover_pair
from repro.experiments.runner import run_until_ready
from repro.topology.registry import resolve_topology


def warm_pair(name="mesh9", **kwargs):
    setup, standby = build_failover_pair(
        resolve_topology(name), mode="warm", **kwargs,
    )
    run_until_ready(setup)
    standby.start()
    return setup, standby


class TestWarmMirror:
    def test_mirror_tracks_the_primary_database(self):
        setup, standby = warm_pair()
        setup.env.run(until=setup.env.now + 5 * standby.sync_interval)
        assert standby.mirror_syncs > 0
        assert len(standby.mirror) == len(setup.fm.database)
        assert setup.fm.endpoint.dsn in standby.mirror

    def test_pi5_tee_applies_primary_events_to_the_mirror(self):
        setup, standby = warm_pair()
        setup.env.run(until=setup.env.now + 2 * standby.sync_interval)
        # Fail a switch-to-switch link; the primary's PI-5 events are
        # teed into the mirror before the next full sync runs.
        link = next(
            link for link in setup.fabric.links
            if link.a_port.device.kind == "switch"
            and link.b_port.device.kind == "switch"
        )
        setup.fabric.fail_link(link.a_port.device.name,
                               link.b_port.device.name)
        setup.env.run(until=setup.env.now + standby.heartbeat_interval)
        assert standby.mirror_events > 0

    def test_stop_detaches_the_tee(self):
        setup, standby = warm_pair()
        setup.env.run(until=setup.env.now + 2e-3)
        standby.stop()
        assert standby._on_primary_event not in setup.fm.pi5_listeners
        standby.stop()  # idempotent


class TestPromotion:
    def test_promote_is_idempotent(self):
        setup, standby = warm_pair()
        setup.env.run(until=setup.env.now + 6e-3)
        first = standby.promote()
        second = standby.promote()
        assert first is second is standby.takeover_event
        report = setup.env.run(until=first)
        assert standby.active
        assert report is standby.report

    def test_late_heartbeat_reply_after_promotion_is_ignored(self):
        setup, standby = warm_pair()
        setup.env.run(until=setup.env.now + 6e-3)
        standby.promote()
        setup.env.run(until=standby.takeover_event)
        sent = standby.heartbeats_sent
        misses = standby.misses
        # Drain well past several would-be heartbeat intervals: the
        # monitor is parked, so neither counter may move again.
        setup.env.run(until=setup.env.now
                      + 10 * standby.heartbeat_interval)
        assert standby.heartbeats_sent == sent
        assert standby.misses == misses


class TestFencing:
    def test_loser_demotes_in_a_two_manager_duel(self):
        # Promote the standby while the primary is still alive: the
        # takeover stamps every claim with epoch 2.  When the old
        # primary next walks the fabric, its fencing pass observes the
        # newer generation and demotes it — the split-brain guard.
        setup, standby = warm_pair()
        setup.env.run(until=setup.env.now + 6e-3)
        setup.env.run(until=standby.promote())
        assert standby.active
        assert standby.fm.epoch > setup.fm.epoch
        primary = setup.fm
        primary.start_discovery(trigger="change", force=True)
        deadline = setup.env.now + 50e-3
        while not primary.demoted and setup.env.now < deadline:
            setup.env.run(until=setup.env.now + 1e-3)
        assert primary.demoted
        assert not standby.fm.demoted
        assert primary.counters.asdict()["fm_demotions"] == 1

    def test_demote_is_idempotent(self):
        setup, standby = warm_pair()
        fm = setup.fm
        fm.demote(reason="test")
        assert fm.demoted
        fm.demote(reason="again")
        assert fm.counters.asdict()["fm_demotions"] == 1
