"""Unit tests for the FM topology database."""

import pytest

from repro.capability import DEVICE_TYPE_ENDPOINT, DEVICE_TYPE_SWITCH
from repro.manager.database import (
    DatabaseError,
    DeviceRecord,
    PortRecord,
    TopologyDatabase,
)
from repro.routing.turnpool import Hop


def endpoint_record(dsn, **kwargs):
    return DeviceRecord(dsn=dsn, type_code=DEVICE_TYPE_ENDPOINT, nports=1,
                        **kwargs)


def switch_record(dsn, nports=16, **kwargs):
    return DeviceRecord(dsn=dsn, type_code=DEVICE_TYPE_SWITCH,
                        nports=nports, **kwargs)


class TestRecords:
    def test_type_predicates(self):
        assert endpoint_record(1).is_endpoint
        assert not endpoint_record(1).is_switch
        assert switch_record(2).is_switch

    def test_port_record_created_on_access(self):
        rec = switch_record(1)
        port = rec.port(3)
        assert isinstance(port, PortRecord)
        assert port.up is None
        assert rec.port(3) is port

    def test_port_bounds_enforced(self):
        rec = endpoint_record(1)
        with pytest.raises(DatabaseError):
            rec.port(1)

    def test_route_packs_hops(self):
        rec = switch_record(1, route_hops=[Hop(16, 0, 5)])
        pool = rec.route()
        assert pool.bits == 4


class TestDatabase:
    def test_add_and_lookup(self):
        db = TopologyDatabase()
        rec = db.add_device(switch_record(0xA))
        assert 0xA in db
        assert db.device(0xA) is rec
        assert len(db) == 1

    def test_duplicate_dsn_rejected(self):
        db = TopologyDatabase()
        db.add_device(switch_record(0xA))
        with pytest.raises(DatabaseError, match="already known"):
            db.add_device(switch_record(0xA))

    def test_unknown_lookup_raises(self):
        with pytest.raises(DatabaseError):
            TopologyDatabase().device(0x1)

    def test_clear(self):
        db = TopologyDatabase()
        db.add_device(switch_record(0xA))
        db.clear()
        assert len(db) == 0

    def test_add_link_records_both_sides(self):
        db = TopologyDatabase()
        db.add_device(switch_record(0xA))
        db.add_device(switch_record(0xB))
        db.add_link(0xA, 3, 0xB, 7)
        assert db.device(0xA).port(3).neighbor_dsn == 0xB
        assert db.device(0xB).port(7).neighbor_dsn == 0xA
        assert db.device(0xB).port(7).neighbor_port == 3

    def test_add_link_with_unknown_far_port(self):
        db = TopologyDatabase()
        db.add_device(switch_record(0xA))
        db.add_device(switch_record(0xB))
        db.add_link(0xA, 3, 0xB, None)
        assert db.device(0xA).port(3).neighbor_dsn == 0xB
        assert db.device(0xB).ports == {}

    def test_switch_endpoint_filters(self):
        db = TopologyDatabase()
        db.add_device(switch_record(1))
        db.add_device(endpoint_record(2))
        assert [r.dsn for r in db.switches()] == [1]
        assert [r.dsn for r in db.endpoints()] == [2]

    def test_graph_view(self):
        db = TopologyDatabase()
        db.add_device(endpoint_record(1))
        db.add_device(switch_record(2))
        db.add_link(1, 0, 2, 4)
        g = db.graph()
        assert set(g.nodes) == {1, 2}
        assert g.has_edge(1, 2)
        assert g.nodes[2]["kind"] == "switch"

    def test_summary(self):
        db = TopologyDatabase()
        db.add_device(endpoint_record(1))
        db.add_device(switch_record(2))
        db.add_link(1, 0, 2, 4)
        assert db.summary() == {
            "devices": 2, "switches": 1, "endpoints": 1, "links": 1,
        }


class TestRoutes:
    def test_extend_route_from_fm_endpoint(self):
        db = TopologyDatabase()
        fm = db.add_device(endpoint_record(1, ingress_port=None))
        hops, out = db.extend_route(fm, 0)
        assert hops == []
        assert out == 0

    def test_extend_route_through_switch(self):
        db = TopologyDatabase()
        sw = db.add_device(
            switch_record(2, ingress_port=4, route_hops=[], out_port=0)
        )
        hops, out = db.extend_route(sw, 9)
        assert hops == [Hop(16, 4, 9)]
        assert out == 0

    def test_extend_route_through_endpoint_rejected(self):
        db = TopologyDatabase()
        ep = db.add_device(endpoint_record(3, ingress_port=0))
        with pytest.raises(DatabaseError, match="endpoint"):
            db.extend_route(ep, 0)

    def test_route_to_fm_reverses_hops(self):
        db = TopologyDatabase()
        rec = db.add_device(
            switch_record(
                5, ingress_port=2,
                route_hops=[Hop(16, 4, 9), Hop(16, 1, 3)], out_port=0,
            )
        )
        pool, device_out = db.route_to_fm(rec)
        assert device_out == 2
        # The reverse route traverses the same switches in opposite
        # order with in/out swapped.
        from repro.routing.turnpool import build_turn_pool

        expected = build_turn_pool([Hop(16, 3, 1), Hop(16, 9, 4)])
        assert pool == expected

    def test_route_to_fm_for_fm_endpoint_rejected(self):
        db = TopologyDatabase()
        fm = db.add_device(endpoint_record(1, ingress_port=None))
        with pytest.raises(DatabaseError):
            db.route_to_fm(fm)
