"""Tests for the topology consistency auditor."""

from repro.manager.consistency import (
    BAD_ROUTE,
    MISSING_DEVICE,
    PHANTOM_DEVICE,
    PHANTOM_LINK,
    STALE_PORT,
    TopologyAuditor,
    audit_topology,
)
from repro.experiments.runner import build_simulation, run_until_ready
from repro.manager import PARALLEL
from repro.topology import make_mesh, make_torus


def ready_setup(spec, **kwargs):
    setup = build_simulation(spec, algorithm=PARALLEL, **kwargs)
    run_until_ready(setup)
    return setup


class TestCleanAudit:
    def test_converged_database_audits_clean(self):
        setup = ready_setup(make_mesh(4, 4))
        report = audit_topology(setup.fabric, setup.fm)
        assert report.ok
        assert report.differences == []
        assert report.devices_checked == len(setup.fm.database)
        assert report.links_checked > 0
        # Every non-FM record's route was replayed.
        assert report.routes_checked == len(setup.fm.database) - 1
        assert report.summary().startswith("consistent")
        assert report.asdict()["ok"] is True

    def test_torus_routes_replay_clean(self):
        setup = ready_setup(make_torus(3, 3))
        report = TopologyAuditor(setup.fabric, setup.fm).audit()
        assert report.ok
        assert report.routes_checked > 0


class TestDivergenceDetection:
    def test_dead_switch_makes_phantoms_and_bad_routes(self):
        setup = ready_setup(make_mesh(3, 3))
        # Kill a switch *without* letting the FM react: the database
        # is now silently stale and the auditor must say so.
        setup.fabric.remove_device("sw_1_1")
        report = audit_topology(setup.fabric, setup.fm)
        assert not report.ok
        kinds = report.by_kind()
        assert kinds.get(PHANTOM_DEVICE, 0) >= 1
        # Some surviving record claims an up port toward the corpse,
        # and at least one stored route crossed it.
        assert kinds.get(STALE_PORT, 0) >= 1
        assert kinds.get(BAD_ROUTE, 0) >= 1
        assert "sw_1_1" in report.render()

    def test_restored_switch_is_reported_missing(self):
        spec = make_mesh(3, 3)
        setup = build_simulation(spec, algorithm=PARALLEL)
        # Discover a fabric with one switch absent, then bring it back:
        # the ground truth now holds a device the database never saw.
        setup.fabric.remove_device("sw_2_2")
        run_until_ready(setup)
        setup.fabric.restore_device("sw_2_2")
        report = audit_topology(setup.fabric, setup.fm)
        assert not report.ok
        # The switch and the endpoint it reconnects are both missing.
        missing = report.of_kind(MISSING_DEVICE)
        assert len(missing) == 2
        assert any("sw_2_2" in diff.subject for diff in missing)
        assert report.by_kind() == {MISSING_DEVICE: 2}

    def test_downed_link_is_a_phantom_link(self):
        setup = ready_setup(make_mesh(3, 3))
        setup.fabric.fail_link("sw_0_0", "sw_0_1")
        report = audit_topology(setup.fabric, setup.fm)
        assert not report.ok
        kinds = report.by_kind()
        # The database still records the edge and both endpoint ports
        # as up; no device disappeared, so no device-level diffs.
        assert kinds.get(PHANTOM_LINK, 0) == 1
        assert kinds.get(STALE_PORT, 0) == 2
        assert PHANTOM_DEVICE not in kinds
        assert MISSING_DEVICE not in kinds

    def test_report_reflects_reaudit_after_repair(self):
        setup = ready_setup(make_mesh(3, 3))
        setup.fabric.fail_link("sw_1_0", "sw_1_1")
        assert not audit_topology(setup.fabric, setup.fm).ok
        setup.fabric.restore_link("sw_1_0", "sw_1_1")
        assert audit_topology(setup.fabric, setup.fm).ok
