"""Integration tests: the three discovery algorithms on live fabrics."""

import networkx as nx
import pytest

from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from repro.manager import (
    ALGORITHMS,
    PARALLEL,
    SERIAL_DEVICE,
    SERIAL_PACKET,
    ProcessingTimeModel,
)
from repro.topology import (
    make_fattree,
    make_irregular,
    make_mesh,
    make_torus,
)

ALL_ALGOS = list(ALGORITHMS)


def discover(spec, algorithm, timing=None, **kwargs):
    setup = build_simulation(spec, algorithm=algorithm, timing=timing,
                             auto_start=False, **kwargs)
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    return setup, stats


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", ALL_ALGOS)
    @pytest.mark.parametrize(
        "spec_builder",
        [
            lambda: make_mesh(3, 3),
            lambda: make_torus(3, 3),
            lambda: make_fattree(4, 2),
            lambda: make_fattree(4, 3),
            lambda: make_fattree(8, 2),
            lambda: make_irregular(8, extra_links=4, seed=3),
        ],
        ids=["mesh", "torus", "tree4x2", "tree4x3", "tree8x2", "irregular"],
    )
    def test_discovers_exact_topology(self, algorithm, spec_builder):
        spec = spec_builder()
        setup, stats = discover(spec, algorithm)
        assert database_matches_fabric(setup)
        assert stats.devices_found == spec.total_devices

    @pytest.mark.parametrize("algorithm", ALL_ALGOS)
    def test_single_endpoint_fabric(self, algorithm):
        """Degenerate fabric: just the FM endpoint and one switch."""
        from repro.topology.spec import TopologySpec

        spec = TopologySpec(
            name="tiny", switches=[("sw", 16)], endpoints=["ep"],
            links=[("ep", 0, "sw", 0)], fm_host="ep",
        )
        setup, stats = discover(spec, algorithm)
        assert database_matches_fabric(setup)
        assert stats.devices_found == 2

    @pytest.mark.parametrize("algorithm", ALL_ALGOS)
    def test_fm_only(self, algorithm):
        """An FM whose port is down discovers only itself."""
        from repro.topology.spec import TopologySpec

        spec = TopologySpec(
            name="solo", switches=[("sw", 16)], endpoints=["ep"],
            links=[("ep", 0, "sw", 0)], fm_host="ep",
        )
        setup = build_simulation(spec, algorithm=algorithm,
                                 auto_start=False)
        setup.fabric.fail_link("ep", "sw")
        setup.env.run()  # drain the port-down event
        setup.fm.start_discovery()
        stats = run_until_ready(setup)
        assert stats.devices_found == 1
        assert database_matches_fabric(setup)

    @pytest.mark.parametrize("algorithm", ALL_ALGOS)
    def test_routes_in_database_are_usable(self, algorithm):
        """Every discovered record carries a route that addresses it."""
        spec = make_mesh(3, 3)
        setup, _ = discover(spec, algorithm)
        fabric = setup.fabric
        for record in setup.fm.database.devices():
            device = fabric.device_by_dsn(record.dsn)
            # The route's hop count equals the BFS distance through
            # switches (each hop is one switch traversal).
            g = fabric.graph()
            dist = nx.shortest_path_length(
                g, setup.fm.endpoint.name, device.name
            )
            assert len(record.route_hops) == max(0, dist - 1)


class TestPacketAccounting:
    def test_packet_count_identical_across_algorithms(self):
        """Section 4.1: "the amount of discovery packets employed by the
        serial and parallel discovery algorithms is very similar" — in
        this implementation the work is identical, so counts match."""
        spec = make_mesh(3, 3)
        counts = {}
        for algorithm in ALL_ALGOS:
            _, stats = discover(spec, algorithm)
            counts[algorithm] = (
                stats.requests_sent, stats.completions_received,
                stats.bytes_sent, stats.bytes_received,
            )
        assert len(set(counts.values())) == 1

    def test_expected_packet_count_for_mesh(self):
        """1 general read per exploration + 1 port read per port."""
        spec = make_mesh(3, 3)
        setup, stats = discover(spec, PARALLEL)
        # Port reads: 9 switches x 16 + 9 endpoints x 1.
        port_reads = 9 * 16 + 9 * 1
        # General reads: one per directed exploration arc + the FM's
        # own endpoint.  Arcs: one per up-port on a device that is not
        # the ingress of its discovery path... simplest invariant:
        # total = requests, and every request got a completion.
        assert stats.completions_received == stats.requests_sent
        assert stats.requests_sent > port_reads
        # Duplicates happen only where cycles exist: the 3x3 mesh has
        # 12 switch-switch links and 17 tree edges over 18 devices.
        assert stats.duplicates_detected == (9 + 12) - (18 - 1) + 4

    def test_tree_topology_has_no_duplicates(self):
        """On an acyclic fabric every device is reached exactly once."""
        spec = make_irregular(6, extra_links=0, seed=1)
        _, stats = discover(spec, PARALLEL)
        assert stats.duplicates_detected == 0

    def test_timeline_monotonic_and_complete(self):
        spec = make_mesh(3, 3)
        _, stats = discover(spec, SERIAL_PACKET)
        times = [t for _, t in stats.packet_timeline]
        assert times == sorted(times)
        assert len(stats.packet_timeline) == stats.completions_received
        assert stats.packet_timeline[-1][1] == stats.finished_at


class TestOrderingInvariants:
    def test_serial_packet_has_one_outstanding_request(self):
        """The defining property of the ASI-SIG algorithm."""
        spec = make_mesh(3, 3)
        setup = build_simulation(spec, algorithm=SERIAL_PACKET,
                                 auto_start=False)
        fm = setup.fm

        max_pending = 0
        original = fm.send_request

        def counting_send(*args, **kwargs):
            nonlocal max_pending
            tag = original(*args, **kwargs)
            if fm.is_discovering:  # exclude post-discovery route writes
                max_pending = max(max_pending, len(fm._pending))
            return tag

        fm.send_request = counting_send
        fm.start_discovery()
        run_until_ready(setup)
        assert max_pending == 1

    def test_serial_device_bounded_by_port_count(self):
        spec = make_mesh(3, 3)
        setup = build_simulation(spec, algorithm=SERIAL_DEVICE,
                                 auto_start=False)
        fm = setup.fm
        max_pending = 0
        original = fm.send_request

        def counting_send(*args, **kwargs):
            nonlocal max_pending
            tag = original(*args, **kwargs)
            if fm.is_discovering:  # exclude post-discovery route writes
                max_pending = max(max_pending, len(fm._pending))
            return tag

        fm.send_request = counting_send
        fm.start_discovery()
        run_until_ready(setup)
        assert 1 < max_pending <= 16

    def test_parallel_exceeds_serial_device_concurrency(self):
        spec = make_mesh(4, 4)
        pendings = {}
        for algorithm in (SERIAL_DEVICE, PARALLEL):
            setup = build_simulation(spec, algorithm=algorithm,
                                     auto_start=False)
            fm = setup.fm
            max_pending = 0
            original = fm.send_request

            def counting_send(*args, __orig=original, __fm=fm, **kwargs):
                nonlocal max_pending
                tag = __orig(*args, **kwargs)
                if __fm.is_discovering:
                    max_pending = max(max_pending, len(__fm._pending))
                return tag

            fm.send_request = counting_send
            fm.start_discovery()
            run_until_ready(setup)
            pendings[algorithm] = max_pending
        assert pendings[PARALLEL] > pendings[SERIAL_DEVICE]

    def test_serial_packet_is_breadth_first(self):
        """Devices complete in non-decreasing distance from the FM."""
        spec = make_mesh(3, 3)
        setup = build_simulation(spec, algorithm=SERIAL_PACKET,
                                 auto_start=False)
        order = []
        db = setup.fm.database
        original = db.add_device

        def tracking_add(record):
            order.append(record.dsn)
            return original(record)

        db.add_device = tracking_add
        setup.fm.start_discovery()
        run_until_ready(setup)

        g = setup.fabric.graph()
        dist = nx.shortest_path_length(g, setup.fm.endpoint.name)
        dsn_dist = {
            setup.fabric.device(name).dsn: d for name, d in dist.items()
        }
        distances = [dsn_dist[dsn] for dsn in order]
        assert distances == sorted(distances)


class TestPerformanceShape:
    """The paper's headline qualitative results, at test scale."""

    def test_parallel_beats_serial_device_beats_serial_packet(self):
        spec = make_mesh(3, 3)
        times = {}
        for algorithm in ALL_ALGOS:
            _, stats = discover(spec, algorithm)
            times[algorithm] = stats.discovery_time
        assert times[PARALLEL] < times[SERIAL_DEVICE] < times[SERIAL_PACKET]

    def test_improvement_grows_with_size(self):
        """Fig. 6: "this improvement is scalable"."""
        gaps = []
        for dim in (3, 4):
            spec = make_mesh(dim, dim)
            t = {}
            for algorithm in (SERIAL_PACKET, PARALLEL):
                _, stats = discover(spec, algorithm)
                t[algorithm] = stats.discovery_time
            gaps.append(t[SERIAL_PACKET] - t[PARALLEL])
        assert gaps[1] > gaps[0]

    def test_fig7a_slopes(self):
        """Serial Packet and Parallel timelines are near-linear; the
        Parallel slope (time per packet) is smaller."""
        import numpy as np

        spec = make_mesh(3, 3)
        slopes = {}
        residuals = {}
        for algorithm in (SERIAL_PACKET, PARALLEL):
            _, stats = discover(spec, algorithm)
            xs = np.array([n for n, _ in stats.packet_timeline], float)
            ys = np.array([t for _, t in stats.packet_timeline], float)
            coeffs, res, *_ = np.polyfit(xs, ys, 1, full=True)
            slopes[algorithm] = coeffs[0]
            # Coefficient of determination of the linear fit.
            ss_tot = float(((ys - ys.mean()) ** 2).sum())
            residuals[algorithm] = 1 - float(res[0]) / ss_tot
        assert slopes[PARALLEL] < slopes[SERIAL_PACKET]
        assert residuals[SERIAL_PACKET] > 0.99  # constant slope
        assert residuals[PARALLEL] > 0.99

    def test_fm_factor_scales_all_algorithms(self):
        """Fig. 8(a): a faster FM shortens discovery for everyone."""
        spec = make_mesh(3, 3)
        for algorithm in ALL_ALGOS:
            base_timing = ProcessingTimeModel()
            fast_timing = ProcessingTimeModel(fm_factor=4)
            _, slow = discover(spec, algorithm, timing=base_timing)
            _, fast = discover(spec, algorithm, timing=fast_timing)
            assert fast.discovery_time < slow.discovery_time

    def test_device_factor_affects_only_serial(self):
        """Fig. 8(b): slowing devices (factor 0.5) hurts the serial
        algorithms but not Parallel (device time is overlapped)."""
        spec = make_mesh(3, 3)
        results = {}
        for algorithm in ALL_ALGOS:
            _, normal = discover(spec, algorithm,
                                 timing=ProcessingTimeModel())
            _, slowdev = discover(
                spec, algorithm,
                timing=ProcessingTimeModel(device_factor=0.5),
            )
            results[algorithm] = (normal.discovery_time,
                                  slowdev.discovery_time)
        # Serial algorithms get measurably slower.
        for algorithm in (SERIAL_PACKET, SERIAL_DEVICE):
            normal, slow = results[algorithm]
            assert slow > normal * 1.02
        # Parallel barely moves.
        normal, slow = results[PARALLEL]
        assert slow < normal * 1.02


class TestRediscovery:
    def test_rediscovery_discards_previous_information(self):
        setup, _ = discover(make_mesh(3, 3), PARALLEL)
        first_devices = set(r.dsn for r in setup.fm.database.devices())
        setup.fabric.remove_device("sw_2_2")
        from repro.experiments.runner import run_until_discovery_count

        run_until_discovery_count(setup, 2)
        second_devices = set(r.dsn for r in setup.fm.database.devices())
        removed_dsn = setup.fabric.device("sw_2_2").dsn
        ep_dsn = setup.fabric.device("ep_2_2").dsn
        assert removed_dsn in first_devices
        assert removed_dsn not in second_devices
        assert ep_dsn not in second_devices  # unreachable endpoint too

    def test_start_discovery_while_running_rejected(self):
        setup = build_simulation(make_mesh(3, 3), algorithm=PARALLEL,
                                 auto_start=False)
        setup.fm.start_discovery()
        with pytest.raises(RuntimeError, match="in progress"):
            setup.fm.start_discovery()

    def test_force_restart_allowed(self):
        setup = build_simulation(make_mesh(3, 3), algorithm=PARALLEL,
                                 auto_start=False)
        setup.fm.start_discovery()
        setup.env.run(until=0.5e-3)
        setup.fm.start_discovery(force=True)
        run_until_ready(setup)
        assert database_matches_fabric(setup)


class TestParallelWindow:
    """The optional bound on Parallel's outstanding requests."""

    def test_window_limits_concurrency(self):
        spec = make_mesh(3, 3)
        setup = build_simulation(spec, algorithm=PARALLEL,
                                 auto_start=False, parallel_window=4)
        fm = setup.fm
        max_pending = 0
        original = fm.send_request

        def counting_send(*args, **kwargs):
            nonlocal max_pending
            tag = original(*args, **kwargs)
            if fm.is_discovering:
                max_pending = max(max_pending, len(fm._pending))
            return tag

        fm.send_request = counting_send
        fm.start_discovery()
        run_until_ready(setup)
        assert max_pending <= 4
        assert database_matches_fabric(setup)

    def test_window_one_behaves_like_serial_packet(self):
        spec = make_mesh(3, 3)
        windowed = build_simulation(spec, algorithm=PARALLEL,
                                    auto_start=False, parallel_window=1)
        windowed.fm.start_discovery()
        w_stats = run_until_ready(windowed)
        serial = build_simulation(spec, algorithm=SERIAL_PACKET,
                                  auto_start=False)
        serial.fm.start_discovery()
        s_stats = run_until_ready(serial)
        # Same packet count; times differ only by the per-packet FM
        # cost difference between the two implementations.
        assert w_stats.requests_sent == s_stats.requests_sent
        per_pkt_w = w_stats.discovery_time / w_stats.requests_sent
        per_pkt_s = s_stats.discovery_time / s_stats.requests_sent
        fm_gap = (serial.fm.timing.fm_time(SERIAL_PACKET, 9)
                  - windowed.fm.timing.fm_time(PARALLEL, 9))
        assert per_pkt_s - per_pkt_w == pytest.approx(fm_gap, rel=0.15)

    def test_invalid_window_rejected(self):
        setup = build_simulation(make_mesh(2, 2), algorithm=PARALLEL,
                                 auto_start=False, parallel_window=0)
        with pytest.raises(ValueError, match="window"):
            setup.fm.start_discovery()

    def test_window_still_discovers_exactly(self):
        for window in (2, 7):
            setup = build_simulation(make_torus(3, 3), algorithm=PARALLEL,
                                     auto_start=False,
                                     parallel_window=window)
            setup.fm.start_discovery()
            run_until_ready(setup)
            assert database_matches_fabric(setup), window
