"""Property-based end-to-end discovery tests on random fabrics."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from repro.analysis.model import expected_packets
from repro.manager import ALGORITHMS, PARALLEL
from repro.topology import make_irregular

COMMON = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    num_switches=st.integers(2, 10),
    extra_links=st.integers(0, 6),
    seed=st.integers(0, 1_000),
    algorithm=st.sampled_from(list(ALGORITHMS)),
)
def test_any_connected_topology_is_discovered_exactly(
    num_switches, extra_links, seed, algorithm
):
    """Soundness + completeness on arbitrary connected fabrics."""
    spec = make_irregular(num_switches, extra_links=extra_links, seed=seed)
    setup = build_simulation(spec, algorithm=algorithm, auto_start=False)
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    assert stats.devices_found == spec.total_devices
    assert database_matches_fabric(setup)
    assert stats.timeouts == 0


@COMMON
@given(
    num_switches=st.integers(2, 10),
    extra_links=st.integers(0, 6),
    seed=st.integers(0, 1_000),
)
def test_packet_count_matches_closed_form(num_switches, extra_links, seed):
    """The packet model predicts every random topology exactly."""
    spec = make_irregular(num_switches, extra_links=extra_links, seed=seed)
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    assert stats.requests_sent == expected_packets(spec)


@COMMON
@given(
    num_switches=st.integers(3, 8),
    seed=st.integers(0, 500),
    victim=st.integers(1, 7),
)
def test_random_removal_is_reassimilated_correctly(
    num_switches, seed, victim
):
    """Rediscovery after removing a random non-FM switch is exact."""
    from repro.experiments.runner import run_until_discovery_count

    spec = make_irregular(num_switches, extra_links=2, seed=seed)
    setup = build_simulation(spec, algorithm=PARALLEL)
    run_until_ready(setup)

    name = f"sw{victim % num_switches}"
    if name == "sw0":
        name = "sw1" if num_switches > 1 else name
    setup.fabric.remove_device(name)
    run_until_discovery_count(setup, 2)
    setup.env.run(until=setup.fm.ready_event)
    assert database_matches_fabric(setup)


@COMMON
@given(
    num_switches=st.integers(2, 8),
    extra_links=st.integers(0, 5),
    seed=st.integers(0, 500),
)
def test_all_discovered_routes_deliver(num_switches, extra_links, seed):
    """Every route in the database actually addresses its device."""
    from repro.capability import BASELINE_CAP_ID
    from repro.protocols import pi4

    spec = make_irregular(num_switches, extra_links=extra_links, seed=seed)
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    setup.fm.start_discovery()
    run_until_ready(setup)

    answers = []
    for record in setup.fm.database.devices():
        if record.ingress_port is None:
            continue
        setup.fm.send_request(
            pi4.ReadRequest(cap_id=BASELINE_CAP_ID, offset=1, tag=0,
                            count=2),
            record.route(), record.out_port,
            callback=lambda completion, _ctx, dsn=record.dsn:
                answers.append((dsn, completion)),
        )
    setup.env.run(until=setup.env.now + 5e-3)
    assert len(answers) == len(setup.fm.database) - 1
    for dsn, completion in answers:
        assert isinstance(completion, pi4.ReadCompletion)
        from repro.capability import unpack_u64

        assert unpack_u64(*completion.data) == dsn
