"""Robustness tests: load, timeouts, and mid-discovery failures."""

import pytest

from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from repro.manager import ALGORITHMS, PARALLEL, SERIAL_PACKET
from repro.topology import make_mesh, make_torus


class TestLargeFabricRegression:
    """Regression for the retry storm found on the 10x10 torus: the
    FM's serial processing backlog must not count against the request
    timeout, or the parallel algorithm melts down under its own load."""

    def test_parallel_torus_no_spurious_timeouts(self):
        setup = build_simulation(make_torus(6, 6), algorithm=PARALLEL,
                                 auto_start=False)
        setup.fm.start_discovery()
        stats = run_until_ready(setup)
        assert stats.timeouts == 0
        assert stats.retries == 0
        assert database_matches_fabric(setup)

    def test_packet_counts_match_across_algorithms_on_torus(self):
        counts = {}
        for algorithm in ALGORITHMS:
            setup = build_simulation(make_torus(4, 4), algorithm=algorithm,
                                     auto_start=False)
            setup.fm.start_discovery()
            stats = run_until_ready(setup)
            counts[algorithm] = stats.requests_sent
        assert len(set(counts.values())) == 1


class TestMidDiscoveryFailure:
    """A device dying *during* discovery must not hang the FM."""

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_discovery_terminates_despite_device_death(self, algorithm):
        setup = build_simulation(make_mesh(4, 4), algorithm=algorithm,
                                 auto_start=False,
                                 request_timeout=0.2e-3, max_retries=1)
        fm = setup.fm
        fm.start_discovery()

        # Kill a far-corner switch shortly after discovery begins, while
        # requests to it may be outstanding or queued.
        def kill(_event):
            if setup.fabric.device("sw_3_3").active:
                setup.fabric.remove_device("sw_3_3")

        timer = setup.env.timeout(0.3e-3)
        timer.callbacks.append(kill)

        stats = run_until_ready(setup)
        # Discovery terminated; the removed region is simply absent or
        # was captured before the death — either way the FM is live and
        # produced a database without hanging.
        assert stats.finished_at is not None
        assert len(fm.database) >= 1

    def test_timeout_and_retry_counters(self):
        """Requests to a dead device time out and are retried."""
        setup = build_simulation(make_mesh(3, 3), algorithm=SERIAL_PACKET,
                                 auto_start=False,
                                 request_timeout=0.1e-3, max_retries=2)
        fm = setup.fm
        fm.start_discovery()

        # Let the FM learn about sw_0_1 (east of the FM's switch) and
        # then kill it silently mid-exploration.
        def kill(_event):
            if setup.fabric.device("sw_1_0").active:
                # Power off WITHOUT failing links first: requests routed
                # through it are lost with no PI-5 to warn the FM.
                setup.fabric.device("sw_1_0").power_off()

        timer = setup.env.timeout(0.25e-3)
        timer.callbacks.append(kill)
        stats = run_until_ready(setup)
        assert stats.finished_at is not None
        assert stats.timeouts + stats.retries > 0

    def test_rediscovery_after_failed_discovery_recovers(self):
        """After a mid-discovery death, a later full rediscovery gets
        the correct (post-change) topology."""
        setup = build_simulation(make_mesh(3, 3), algorithm=PARALLEL,
                                 auto_start=False,
                                 request_timeout=0.2e-3, max_retries=1)
        fm = setup.fm
        fm.start_discovery()

        def kill(_event):
            if setup.fabric.device("sw_2_2").active:
                setup.fabric.device("sw_2_2").power_off()

        setup.env.timeout(0.2e-3).callbacks.append(kill)
        run_until_ready(setup)

        # Now take the links down properly and rediscover.
        for port in setup.fabric.device("sw_2_2").ports:
            if port.link is not None and port.link.up:
                port.link.take_down()
        setup.env.run(until=setup.env.now + 1e-4)
        if fm.is_discovering:
            setup.env.run(until=fm.ready_event)
        else:
            fm.start_discovery(trigger="manual")
            setup.env.run(until=fm.ready_event)
        assert database_matches_fabric(setup)
