"""Property tests: incremental route recompute == full recompute.

The partial-assimilation manager rebuilds routes after every down
event.  The incremental mode keeps routes whose shortest-path-tree
edge and ancestor chain are untouched; these tests drive seeded fault
sequences over several topology families and check, after EVERY
fault, that the incrementally maintained database is bit-identical to
a from-scratch full recompute of the same state.
"""

import copy
import random

import pytest

from repro.capability import DEVICE_TYPE_ENDPOINT, DEVICE_TYPE_SWITCH
from repro.manager.database import DeviceRecord, TopologyDatabase
from repro.topology import (
    make_dragonfly,
    make_fat_tree2,
    make_irregular,
    make_mesh,
)


def _db_from_spec(spec):
    """A discovery-shaped database built straight from a spec.

    Records are inserted in spec order (switches then endpoints) and
    links in spec order, mirroring how a deterministic walk would
    populate the database.
    """
    db = TopologyDatabase()
    dsn_of = {}
    next_dsn = 0x0100_0000
    for name in spec.endpoints:
        dsn_of[name] = next_dsn
        db.add_device(DeviceRecord(dsn=next_dsn,
                                   type_code=DEVICE_TYPE_ENDPOINT,
                                   nports=1))
        next_dsn += 1
    for name, nports in spec.switches:
        dsn_of[name] = next_dsn
        db.add_device(DeviceRecord(dsn=next_dsn,
                                   type_code=DEVICE_TYPE_SWITCH,
                                   nports=nports))
        next_dsn += 1
    for a, pa, b, pb in spec.links:
        db.add_link(dsn_of[a], pa, dsn_of[b], pb)
    return db, dsn_of


def _route_snapshot(db):
    snap = {}
    for record in db.devices():
        snap[record.dsn] = (
            tuple(record.route_hops),
            record.out_port,
            record.ingress_port,
            record.route().pool,
            record.route().bits,
        )
    return snap


def _up_links(db):
    links = []
    for record in db.devices():
        for index in sorted(record.ports):
            port = record.ports[index]
            if port.up and port.neighbor_dsn is not None:
                links.append((record.dsn, index))
    return links


SPECS = [
    ("mesh44", lambda: make_mesh(4, 4)),
    ("dragonfly", lambda: make_dragonfly(4, 6, endpoints_per_switch=2)),
    ("fattree2", lambda: make_fat_tree2(16, switch_ports=8)),
    ("irregular", lambda: make_irregular(10, extra_links=4, seed=5)),
]


class TestIncrementalMatchesFull:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("name,factory", SPECS)
    def test_identical_after_every_fault(self, name, factory, seed):
        spec = factory()
        db, dsn_of = _db_from_spec(spec)
        fm = dsn_of[spec.fm_host]
        assert db.recompute_routes(fm)["mode"] == "full"
        rng = random.Random(seed)
        kept_any = rebuilt_any = False
        for _step in range(12):
            if _step % 3 == 2:
                # Targeted fault: down a route-tree edge (the ingress
                # link of some record), guaranteeing subtree surgery.
                victims = [r for r in db.devices()
                           if r.ingress_port is not None]
                if not victims:
                    break
                victim = rng.choice(sorted(victims, key=lambda r: r.dsn))
                dsn, port = victim.dsn, victim.ingress_port
            else:
                links = _up_links(db)
                if not links:
                    break
                dsn, port = rng.choice(links)
            db.mark_port_down(dsn, port)
            db.prune_unreachable(fm)
            if fm not in db:
                break
            reference = copy.deepcopy(db)
            result = db.recompute_routes(fm, incremental=True)
            assert result["mode"] == "incremental"
            reference.recompute_routes(fm)  # full, from scratch
            assert _route_snapshot(db) == _route_snapshot(reference), (
                f"{name} seed={seed} step={_step}: incremental diverged "
                f"from full after downing port {port} of {dsn:#x}"
            )
            kept_any = kept_any or result["kept"] > 0
            rebuilt_any = rebuilt_any or result["rebuilt"] > 0
        # The run must have exercised both sides of the skip decision,
        # or the property pins nothing.
        assert kept_any, f"{name} seed={seed}: no route was ever kept"
        assert rebuilt_any, f"{name} seed={seed}: no route was ever rebuilt"

    def test_device_removal_bursts_match_full(self):
        """Whole-device removals (every port down at once) stay exact."""
        spec = make_dragonfly(4, 5)
        db, dsn_of = _db_from_spec(spec)
        fm = dsn_of[spec.fm_host]
        db.recompute_routes(fm)
        rng = random.Random(99)
        for _ in range(6):
            switches = [r for r in db.switches()
                        if r.dsn != fm and len(db) > 4]
            if not switches:
                break
            victim = rng.choice(sorted(switches, key=lambda r: r.dsn))
            for index in sorted(victim.ports):
                if victim.ports[index].up:
                    db.mark_port_down(victim.dsn, index)
            db.prune_unreachable(fm)
            reference = copy.deepcopy(db)
            assert db.recompute_routes(
                fm, incremental=True)["mode"] == "incremental"
            reference.recompute_routes(fm)
            assert _route_snapshot(db) == _route_snapshot(reference)


class TestCanonicalInvariant:
    def test_additions_force_full_recompute(self):
        spec = make_mesh(3, 3)
        db, dsn_of = _db_from_spec(spec)
        fm = dsn_of[spec.fm_host]
        db.recompute_routes(fm)
        assert db.routes_canonical
        # A new device + link (hot add) invalidates the stored tree.
        db.add_device(DeviceRecord(dsn=0x999, type_code=DEVICE_TYPE_SWITCH,
                                   nports=4))
        some_switch = next(r for r in db.switches() if r.dsn != 0x999)
        free = max(some_switch.ports, default=0) + 1
        db.add_link(some_switch.dsn, free, 0x999, 0)
        assert not db.routes_canonical
        assert db.recompute_routes(fm, incremental=True)["mode"] == "full"
        assert db.routes_canonical

    def test_clear_resets_canonical_state(self):
        spec = make_mesh(2, 2)
        db, dsn_of = _db_from_spec(spec)
        fm = dsn_of[spec.fm_host]
        db.recompute_routes(fm)
        db.clear()
        assert not db.routes_canonical
