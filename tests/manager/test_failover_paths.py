"""Tests for FM failover and path distribution."""

import pytest

from repro.capability import PATH_TABLE_CAP_ID
from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from repro.manager import PARALLEL, FabricManager
from repro.manager.failover import StandbyManager
from repro.manager.path_distribution import PathDistributor
from repro.routing.paths import fabric_route
from repro.topology import make_mesh


def primary_and_standby(spec):
    """Primary FM on the spec's host, standby on the far corner."""
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    standby_host = sorted(
        ep for ep in spec.endpoints if ep != (spec.fm_host or "")
    )[-1]
    standby_fm = FabricManager(
        setup.fabric.device(standby_host),
        setup.entities[standby_host],
        algorithm=PARALLEL,
        auto_start=False,
        request_timeout=0.3e-3,
        max_retries=0,
    )
    route = fabric_route(setup.fabric, standby_host, spec.fm_host)
    standby = StandbyManager(
        standby_fm, primary_route=route,
        heartbeat_interval=1e-3, miss_threshold=2,
    )
    return setup, standby


class TestFailover:
    def test_healthy_primary_keeps_standby_passive(self):
        setup, standby = primary_and_standby(make_mesh(3, 3))
        setup.fm.start_discovery()
        run_until_ready(setup)
        standby.start()
        setup.env.run(until=setup.env.now + 20e-3)
        assert not standby.active
        assert standby.heartbeats_answered >= 10
        assert standby.misses == 0

    def test_takeover_after_primary_death(self):
        setup, standby = primary_and_standby(make_mesh(3, 3))
        setup.fm.start_discovery()
        run_until_ready(setup)
        standby.start()
        setup.env.run(until=setup.env.now + 5e-3)

        # Kill the primary FM's endpoint (heartbeats start failing).
        setup.fabric.remove_device(setup.fm.endpoint.name)
        report = setup.env.run(until=standby.takeover_event)

        assert standby.active
        assert report.missed_heartbeats >= 2
        assert report.recovery_time > 0
        # The standby discovered the post-failure topology from its own
        # endpoint: everything reachable except the dead primary.
        found = len(standby.fm.database)
        reachable = len(
            setup.fabric.reachable_devices(standby.fm.endpoint.name)
        )
        assert found == reachable

    def test_validation(self):
        setup, standby = primary_and_standby(make_mesh(2, 2))
        with pytest.raises(ValueError):
            StandbyManager(standby.fm, (None, 0), heartbeat_interval=0)
        with pytest.raises(ValueError):
            StandbyManager(standby.fm, (None, 0), miss_threshold=0)
        standby.start()
        with pytest.raises(RuntimeError):
            standby.start()


class TestPathDistribution:
    @pytest.fixture(scope="class")
    def distributed(self):
        setup = build_simulation(make_mesh(3, 3), algorithm=PARALLEL,
                                 auto_start=False)
        setup.fm.start_discovery()
        run_until_ready(setup)
        distributor = PathDistributor(setup.fm)
        stats = setup.env.run(until=distributor.distribute())
        return setup, stats

    def test_every_pair_distributed(self, distributed):
        setup, stats = distributed
        n = 9  # endpoints in a 3x3 mesh
        assert stats.endpoints == n
        assert stats.entries_written == n * (n - 1)
        assert stats.write_failures == 0
        assert stats.duration > 0

    def test_tables_loaded_on_devices(self, distributed):
        setup, _ = distributed
        for endpoint in setup.fabric.endpoints():
            table = endpoint.config_space.capability(PATH_TABLE_CAP_ID)
            entries = table.entries()
            assert len(entries) == 8

    def test_distributed_routes_actually_deliver(self, distributed):
        """Endpoints can use their tables to reach each other."""
        from repro.fabric import Packet, make_management_header
        from repro.fabric.packet import PI_DEVICE_MANAGEMENT

        setup, _ = distributed
        src = setup.fabric.device("ep_1_1")
        dst = setup.fabric.device("ep_2_0")
        table = src.config_space.capability(PATH_TABLE_CAP_ID)
        pool, pointer = table.lookup(dst.dsn)

        got = []
        dst.local_handler = lambda packet, port: got.append(packet)
        header = make_management_header(pool, pointer,
                                        pi=PI_DEVICE_MANAGEMENT)
        src.inject(Packet(header=header), port_index=0)
        setup.env.run(until=setup.env.now + 1e-4)
        assert len(got) == 1


class TestStandbyShutdown:
    def test_stop_halts_heartbeats_promptly(self):
        setup, standby = primary_and_standby(make_mesh(3, 3))
        setup.fm.start_discovery()
        run_until_ready(setup)
        standby.start()
        setup.env.run(until=setup.env.now + 5e-3)
        standby.stop()
        sent = standby.heartbeats_sent
        t_stop = setup.env.now
        # The pending interval timeout was cancelled: draining the
        # schedule sends no further heartbeat and never promotes.
        setup.env.run()
        assert standby.heartbeats_sent == sent
        assert not standby.active
        # Nothing standby-related outlived the stop by more than one
        # in-flight heartbeat round trip.
        assert setup.env.now < t_stop + standby.heartbeat_interval

    def test_stop_is_idempotent_and_safe_before_start(self):
        setup, standby = primary_and_standby(make_mesh(3, 3))
        standby.stop()  # never started: no-op
        standby.stop()
        assert standby._proc is None
        setup2, standby2 = primary_and_standby(make_mesh(3, 3))
        setup2.fm.start_discovery()
        run_until_ready(setup2)
        standby2.start()
        setup2.env.run(until=setup2.env.now + 3e-3)
        standby2.stop()
        standby2.stop()  # repeated stop must not raise
        setup2.env.run()
        assert not standby2.active

    def test_stop_wins_against_a_dead_primary(self):
        setup, standby = primary_and_standby(make_mesh(3, 3))
        setup.fm.start_discovery()
        run_until_ready(setup)
        standby.start()
        setup.env.run(until=setup.env.now + 5e-3)
        # Primary dies; before the miss threshold trips, operations
        # shuts the standby down (e.g. planned maintenance).
        setup.fabric.remove_device(setup.fm.endpoint.name)
        standby.stop()
        setup.env.run()
        assert not standby.active
        assert not standby.takeover_event.triggered
