"""Unit tests for the processing-time model (Fig. 4 inputs)."""

import pytest

from repro.manager.timing import (
    ALGORITHMS,
    PARALLEL,
    SERIAL_DEVICE,
    SERIAL_PACKET,
    ProcessingTimeModel,
)


@pytest.fixture
def model():
    return ProcessingTimeModel()


class TestDefaults:
    def test_fig4_ordering(self, model):
        """Serial Packet > Serial Device > Parallel at every size."""
        for size in (0, 18, 128, 200):
            sp = model.fm_time(SERIAL_PACKET, size)
            sd = model.fm_time(SERIAL_DEVICE, size)
            pa = model.fm_time(PARALLEL, size)
            assert sp > sd > pa

    def test_fig4_magnitude(self, model):
        """Times are in the 10-25 microsecond band Fig. 4 reports."""
        for algo in ALGORITHMS:
            for size in (9, 100):
                t = model.fm_time(algo, size)
                assert 5e-6 < t < 30e-6

    def test_grows_with_network_size(self, model):
        assert model.fm_time(PARALLEL, 200) > model.fm_time(PARALLEL, 9)

    def test_device_time_is_low_and_constant(self, model):
        t = model.device_processing_time()
        assert 0 < t < 10e-6  # "low"


class TestFactors:
    def test_fm_factor_is_speed_multiplier(self, model):
        fast = model.with_factors(fm_factor=4)
        assert fast.fm_time(PARALLEL, 10) == pytest.approx(
            model.fm_time(PARALLEL, 10) / 4
        )

    def test_device_factor_is_speed_multiplier(self, model):
        slow = model.with_factors(device_factor=0.2)
        assert slow.device_processing_time() == pytest.approx(
            model.device_processing_time() * 5
        )

    def test_with_factors_preserves_other_fields(self, model):
        other = model.with_factors(fm_factor=2)
        assert other.fm_base == model.fm_base
        assert other.device_factor == model.device_factor

    def test_invalid_factors_rejected(self):
        with pytest.raises(ValueError):
            ProcessingTimeModel(fm_factor=0)
        with pytest.raises(ValueError):
            ProcessingTimeModel(device_factor=-1)


class TestValidation:
    def test_unknown_algorithm_rejected(self, model):
        with pytest.raises(ValueError, match="unknown algorithm"):
            model.fm_time("quantum", 10)

    def test_missing_algorithm_base_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            ProcessingTimeModel(fm_base={PARALLEL: 1e-6})

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ValueError):
            ProcessingTimeModel(device_time=0)
        with pytest.raises(ValueError):
            ProcessingTimeModel(fm_slope=-1e-9)
