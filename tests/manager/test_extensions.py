"""Tests for the future-work extensions: partial and distributed discovery."""

import pytest

from repro.capability import CLAIM_CAP_ID
from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_discovery_count,
    run_until_ready,
)
from repro.manager import PARALLEL, FabricManager
from repro.manager.discovery.distributed import (
    ClaimingParallelDiscovery,
    CollaborativeDiscovery,
)
from repro.manager.discovery.partial import PartialAssimilationManager
from repro.protocols.entity import ManagementEntity
from repro.routing.paths import fabric_route
from repro.topology import make_mesh, make_torus


def build_partial(spec, **kwargs):
    """build_simulation wired to a PartialAssimilationManager."""
    from repro.sim import Environment

    env = Environment()
    fabric = spec.build(env)
    entities = {
        name: ManagementEntity(device)
        for name, device in fabric.devices.items()
    }
    host = spec.fm_host
    fm = PartialAssimilationManager(
        fabric.device(host), entities[host], auto_start=False, **kwargs
    )
    fabric.power_up()

    class Setup:
        pass

    setup = Setup()
    setup.env, setup.fabric, setup.entities, setup.fm, setup.spec = (
        env, fabric, entities, fm, spec,
    )
    return setup


class TestPartialAssimilation:
    def test_removal_assimilated_with_few_packets(self):
        setup = build_partial(make_mesh(4, 4))
        setup.fm.start_discovery()
        full = run_until_ready(setup)

        setup.fabric.remove_device("sw_2_2")
        partial = run_until_discovery_count(setup, 2)
        setup.env.run(until=setup.fm.ready_event)

        assert partial.algorithm == "partial"
        assert database_matches_fabric(setup)
        # A confirm read per reporting neighbour (4 mesh neighbours +
        # none for the dead endpoint) vs ~600 for full rediscovery.
        assert partial.requests_sent < full.requests_sent / 10

    def test_removal_faster_than_full_rediscovery(self):
        spec = make_mesh(4, 4)
        # Full rediscovery baseline.
        base = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
        base.fm.start_discovery()
        run_until_ready(base)
        base.fabric.remove_device("sw_2_2")
        full = run_until_discovery_count(base, 2)

        setup = build_partial(spec)
        setup.fm.start_discovery()
        run_until_ready(setup)
        setup.fabric.remove_device("sw_2_2")
        partial = run_until_discovery_count(setup, 2)

        # The fixed liveness-probe timeout (1 ms) dominates at this
        # small scale; the packet saving is the >10x headline (above).
        assert partial.discovery_time < full.discovery_time / 2

    def test_addition_assimilated_correctly(self):
        setup = build_partial(make_mesh(3, 3))
        setup.fabric.remove_device("sw_2_2")
        setup.fm.start_discovery()
        run_until_ready(setup)

        setup.fabric.restore_device("sw_2_2")
        partial = run_until_discovery_count(setup, 2)
        setup.env.run(until=setup.fm.ready_event)

        assert partial.algorithm == "partial"
        assert database_matches_fabric(setup)
        # The new region (switch + endpoint) was explored: general +
        # port reads happened, but far fewer than a full run.
        assert partial.requests_sent >= 1 + 16 + 1
        assert partial.requests_sent < 60

    def test_routes_usable_after_partial_removal(self):
        """Surviving devices remain addressable (routes recomputed)."""
        setup = build_partial(make_mesh(3, 3))
        setup.fm.start_discovery()
        run_until_ready(setup)
        # Remove a switch that sits on many discovered shortest paths.
        setup.fabric.remove_device("sw_1_1")
        run_until_discovery_count(setup, 2)
        setup.env.run(until=setup.fm.ready_event)
        assert database_matches_fabric(setup)

        # Address the farthest endpoint through the updated routes.
        from repro.capability import BASELINE_CAP_ID
        from repro.protocols import pi4

        record = setup.fm.database.device(
            setup.fabric.device("ep_2_2").dsn
        )
        got = []
        setup.fm.send_request(
            pi4.ReadRequest(cap_id=BASELINE_CAP_ID, offset=0, tag=0),
            record.route(), record.out_port,
            callback=lambda c, _ctx: got.append(c),
        )
        setup.env.run(until=setup.env.now + 1e-3)
        assert len(got) == 1 and got[0] is not None

    def test_unknown_reporter_falls_back_to_full(self):
        setup = build_partial(make_mesh(3, 3))
        setup.fm.start_discovery()
        run_until_ready(setup)

        # Forge an event from a DSN the FM has never seen.
        from repro.protocols import pi5

        setup.fm.handle_local_event(
            pi5.PortEvent(reporter_dsn=0xDEAD, port=0, up=False, seq=1)
        )
        stats = run_until_discovery_count(setup, 2)
        assert stats.algorithm != "partial"  # full fallback ran
        assert setup.fm.counters["partial_fallbacks"] >= 1


class TestCollaborativeDiscovery:
    def build_pair(self, spec):
        setup = build_simulation(spec, algorithm=PARALLEL,
                                 auto_start=False)
        helper_host = sorted(
            ep for ep in spec.endpoints if ep != spec.fm_host
        )[-1]
        helper_fm = FabricManager(
            setup.fabric.device(helper_host),
            setup.entities[helper_host],
            algorithm=PARALLEL, auto_start=False,
        )
        route = fabric_route(setup.fabric, helper_host, spec.fm_host)
        return setup, helper_fm, route

    def test_union_covers_entire_fabric(self):
        spec = make_mesh(4, 4)
        setup, helper_fm, route = self.build_pair(spec)
        collab = CollaborativeDiscovery(
            setup.fm, [(helper_fm, route)], generation=1
        )
        stats = setup.env.run(until=collab.run())
        assert database_matches_fabric(setup)
        assert stats.merge_writes == stats.region_sizes[
            helper_fm.endpoint.name
        ]

    def test_regions_partition_devices(self):
        spec = make_mesh(4, 4)
        setup, helper_fm, route = self.build_pair(spec)
        collab = CollaborativeDiscovery(
            setup.fm, [(helper_fm, route)], generation=1
        )
        setup.env.run(until=collab.run())
        primary_exp = setup.fm.discovery
        helper_exp = helper_fm.discovery
        assert isinstance(primary_exp, ClaimingParallelDiscovery)
        # Every device owned by exactly one FM.
        assert primary_exp.owned.isdisjoint(helper_exp.owned)
        total = len(primary_exp.owned | helper_exp.owned)
        assert total == spec.total_devices

    def test_claims_visible_on_devices(self):
        spec = make_mesh(3, 3)
        setup, helper_fm, route = self.build_pair(spec)
        collab = CollaborativeDiscovery(
            setup.fm, [(helper_fm, route)], generation=7
        )
        setup.env.run(until=collab.run())
        owners = {setup.fm.endpoint.dsn, helper_fm.endpoint.dsn}
        claimed = 0
        for device in setup.fabric.devices.values():
            claim = device.config_space.capability(CLAIM_CAP_ID).get_claim()
            if claim is not None:
                owner, generation = claim
                # Merge writes bump the generation; exploration claims
                # carry the round's generation.
                assert generation in (7, 8)
                if generation == 7:
                    assert owner in owners
                claimed += 1
        assert claimed == spec.total_devices

    def test_collaboration_beats_single_fm_on_large_fabric(self):
        spec = make_torus(6, 6)
        # Single-FM parallel baseline.
        solo = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
        solo.fm.start_discovery()
        solo_stats = run_until_ready(solo)

        setup, helper_fm, route = self.build_pair(spec)
        collab = CollaborativeDiscovery(
            setup.fm, [(helper_fm, route)], generation=1
        )
        stats = setup.env.run(until=collab.run())
        assert stats.total_time < solo_stats.discovery_time

    def test_requires_helpers(self):
        spec = make_mesh(2, 2)
        setup, helper_fm, route = self.build_pair(spec)
        with pytest.raises(ValueError):
            CollaborativeDiscovery(setup.fm, [])


class TestThreeWayCollaboration:
    def test_three_fms_partition_and_merge(self):
        spec = make_torus(4, 4)
        setup = build_simulation(spec, algorithm=PARALLEL,
                                 auto_start=False)
        helpers = []
        for host in ("ep_2_2", "ep_0_3"):
            fm = FabricManager(
                setup.fabric.device(host), setup.entities[host],
                algorithm=PARALLEL, auto_start=False,
            )
            route = fabric_route(setup.fabric, host, spec.fm_host)
            helpers.append((fm, route))
        collab = CollaborativeDiscovery(setup.fm, helpers, generation=3)
        stats = setup.env.run(until=collab.run())

        assert database_matches_fabric(setup)
        regions = list(stats.region_sizes.values())
        assert sum(regions) == spec.total_devices
        assert all(size > 0 for size in regions)
        # Merge writes: one per helper-owned device.
        helper_devices = sum(
            stats.region_sizes[fm.endpoint.name] for fm, _r in helpers
        )
        assert stats.merge_writes == helper_devices
