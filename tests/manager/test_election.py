"""Tests for the distributed FM election."""

import pytest

from repro.fabric.fabric import Fabric
from repro.manager.election import (
    Candidacy,
    Election,
    ElectionAgent,
    ElectionError,
)
from repro.protocols import ManagementEntity
from repro.sim import Environment
from repro.topology import make_mesh, make_torus


def build(spec, priorities=None):
    """Power up a spec with entities; optional per-endpoint priority."""
    env = Environment()
    fabric = spec.build(env)
    if priorities:
        for name, priority in priorities.items():
            fabric.device(name).fm_priority = priority
    entities = {n: ManagementEntity(d) for n, d in fabric.devices.items()}
    fabric.power_up()
    return env, fabric, entities


class TestCandidacyMessage:
    def test_pack_unpack(self):
        c = Candidacy(priority=7, dsn=0xDEAD_BEEF_0001, seq=3)
        assert Candidacy.unpack(c.pack()) == c

    def test_bad_magic_rejected(self):
        raw = bytearray(Candidacy(priority=1, dsn=2, seq=3).pack())
        raw[0] ^= 0xFF
        with pytest.raises(ElectionError, match="magic"):
            Candidacy.unpack(bytes(raw))

    def test_short_payload_rejected(self):
        with pytest.raises(ElectionError, match="short"):
            Candidacy.unpack(b"\x00\x01")

    def test_rank_orders_by_priority_then_dsn(self):
        low = Candidacy(priority=1, dsn=100, seq=1)
        high = Candidacy(priority=2, dsn=1, seq=1)
        tie_a = Candidacy(priority=2, dsn=50, seq=1)
        assert high.rank > low.rank
        assert tie_a.rank > low.rank
        assert high.rank < tie_a.rank  # same priority, higher dsn wins


class TestElection:
    def test_highest_dsn_wins_at_equal_priority(self):
        spec = make_mesh(2, 2)
        env, fabric, entities = build(spec)
        election = Election(entities, seed=1)
        result = env.run(until=election.run())
        assert result.consensus
        expected = max(ep.dsn for ep in fabric.endpoints())
        assert result.primary_dsn == expected

    def test_priority_overrides_dsn(self):
        spec = make_mesh(2, 2)
        env, fabric, entities = build(
            spec, priorities={"ep_0_0": 10}
        )
        election = Election(entities, seed=2)
        result = env.run(until=election.run())
        assert result.consensus
        assert result.primary_dsn == fabric.device("ep_0_0").dsn

    def test_secondary_is_runner_up(self):
        spec = make_mesh(2, 2)
        env, fabric, entities = build(
            spec, priorities={"ep_0_0": 10, "ep_1_1": 5}
        )
        election = Election(entities, seed=3)
        result = env.run(until=election.run())
        assert result.primary_dsn == fabric.device("ep_0_0").dsn
        assert result.secondary_dsn == fabric.device("ep_1_1").dsn

    def test_flood_terminates_on_cyclic_topology(self):
        """Duplicate suppression bounds the flood on a torus."""
        spec = make_torus(3, 3)
        env, fabric, entities = build(spec)
        election = Election(entities, seed=4)
        result = env.run(until=election.run())
        assert result.consensus
        # Every candidate was seen by every endpoint.
        for view in result.views.values():
            assert view == (result.primary_dsn, result.secondary_dsn)
        suppressed = sum(
            e.stats["election_duplicates_suppressed"]
            for e in entities.values()
        )
        assert suppressed > 0  # cycles actually produced duplicates

    def test_all_endpoints_see_all_candidates(self):
        spec = make_mesh(3, 3)
        env, fabric, entities = build(spec)
        election = Election(entities, seed=5)
        env.run(until=election.run())
        n_candidates = len(fabric.endpoints())
        for name, agent in election.agents.items():
            if agent.is_candidate:
                assert len(agent.candidates) == n_candidates

    def test_non_fm_capable_endpoints_do_not_run(self):
        spec = make_mesh(2, 2)
        env = Environment()
        fabric = spec.build(env)
        fabric.device("ep_0_0").fm_capable = False
        entities = {
            n: ManagementEntity(d) for n, d in fabric.devices.items()
        }
        fabric.power_up()
        election = Election(entities, seed=6)
        result = env.run(until=election.run())
        assert result.primary_dsn != fabric.device("ep_0_0").dsn
        assert fabric.device("ep_0_0").dsn not in result.views

    def test_agent_cannot_announce_from_switch(self):
        spec = make_mesh(2, 2)
        env, fabric, entities = build(spec)
        election = Election(entities, seed=7)
        switch_agent = election.agents["sw_0_0"]
        with pytest.raises(ElectionError):
            switch_agent.announce()

    def test_validation(self):
        spec = make_mesh(2, 2)
        env, fabric, entities = build(spec)
        with pytest.raises(ValueError):
            Election(entities, settle_time=0)
        with pytest.raises(ElectionError):
            Election({})


class TestEpochs:
    def test_epoch_survives_the_wire(self):
        c = Candidacy(priority=1, dsn=2, seq=3, epoch=7)
        assert Candidacy.unpack(c.pack()).epoch == 7

    def test_higher_epoch_supersedes_even_a_lower_seq(self):
        env, fabric, entities = build(make_mesh(2, 2))
        agent = ElectionAgent(entities["ep_0_0"])
        old = Candidacy(priority=1, dsn=42, seq=9, epoch=1)
        new = Candidacy(priority=1, dsn=42, seq=1, epoch=2)
        agent._record(old)
        agent._record(new)
        assert agent.candidates[42] is new
        agent._record(old)  # a stale epoch cannot regress the record
        assert agent.candidates[42] is new

    def test_result_carries_a_monotonic_round_epoch(self):
        spec = make_mesh(2, 2)
        env, fabric, entities = build(spec)
        first = env.run(until=Election(entities, seed=1, epoch=1).run())
        assert first.consensus
        assert first.epoch == 1
        rerun = Election(entities, seed=2, epoch=first.epoch + 1)
        second = env.run(until=rerun.run())
        assert second.consensus
        assert second.epoch == 2
        # Same candidates, later round: the winner is stable.
        assert second.primary_dsn == first.primary_dsn

    def test_winner_is_deterministic_across_jitter_seeds(self):
        outcomes = set()
        for seed in range(5):
            env, fabric, entities = build(make_mesh(3, 3))
            result = env.run(until=Election(entities, seed=seed).run())
            assert result.consensus
            outcomes.add((result.primary_dsn, result.secondary_dsn))
        # Jitter reorders the flood but never the ranking.
        assert len(outcomes) == 1

    def test_epoch_validation(self):
        env, fabric, entities = build(make_mesh(2, 2))
        with pytest.raises(ValueError):
            Election(entities, epoch=0)


class TestPartitionedElection:
    def test_split_brain_on_partitioned_fabric(self):
        """Each half of a partitioned fabric elects its own primary —
        the classic split-brain outcome a real deployment must detect
        by other means (the election itself cannot)."""
        spec = make_mesh(1, 4)  # a line: easy to cut in half
        env, fabric, entities = build(spec)
        fabric.fail_link("sw_0_1", "sw_0_2")
        election = Election(entities, seed=9)
        result = env.run(until=election.run())

        assert not result.consensus
        views = set(result.views.values())
        assert len(views) == 2  # two camps
        # Each side elected the best candidate it could reach.
        left = {fabric.device(n).dsn for n in ("ep_0_0", "ep_0_1")}
        right = {fabric.device(n).dsn for n in ("ep_0_2", "ep_0_3")}
        for dsn, (primary, _secondary) in result.views.items():
            side = left if dsn in left else right
            assert primary == max(side)

    def test_late_rerun_after_heal_converges(self):
        spec = make_mesh(1, 4)
        env, fabric, entities = build(spec)
        fabric.fail_link("sw_0_1", "sw_0_2")
        election = Election(entities, seed=10)
        env.run(until=election.run())
        # Heal and run a fresh round.
        fabric.restore_link("sw_0_1", "sw_0_2")
        election2 = Election(entities, seed=11)
        result = env.run(until=election2.run())
        assert result.consensus
