"""Staggered bring-up: the FM converges as devices appear.

With devices activating at random times, the FM's first discovery only
sees what is already alive.  But every discovered device gets an event
route, so when a late device's link trains, its already-known
neighbour reports PI-5 and the FM assimilates — the system converges
to the full topology without any global synchronization.
"""

import pytest

from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
)
from repro.manager import PARALLEL
from repro.topology import make_mesh, make_torus


def staggered(spec, stagger, seed):
    setup = build_simulation(spec, algorithm=PARALLEL, power_up=False)
    setup.fabric.power_up(stagger=stagger, seed=seed,
                          first=setup.fm.endpoint.name)
    return setup


def settle(setup, horizon):
    env = setup.env
    env.run(until=horizon)
    for _ in range(100):
        if not setup.fm.is_discovering:
            break
        env.run(until=env.now + 10e-3)
    env.run(until=env.now + 30e-3)


class TestStaggeredBringup:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_converges_to_full_topology(self, seed):
        spec = make_mesh(3, 3)
        setup = staggered(spec, stagger=20e-3, seed=seed)
        settle(setup, horizon=40e-3)
        assert database_matches_fabric(setup)
        assert len(setup.fm.database) == spec.total_devices

    def test_multiple_assimilations_happened(self):
        """A slow transient forces the FM through several rounds."""
        spec = make_mesh(3, 3)
        setup = staggered(spec, stagger=30e-3, seed=5)
        settle(setup, horizon=60e-3)
        assert database_matches_fabric(setup)
        assert len(setup.fm.history) >= 2
        triggers = [s.trigger for s in setup.fm.history]
        assert triggers[0] == "initial"
        assert "change" in triggers[1:]

    def test_fast_transient_single_discovery(self):
        """If everything is up before the FM finishes its first pass,
        one discovery suffices (live port reads see the late arrivals)."""
        spec = make_mesh(2, 2)
        setup = staggered(spec, stagger=0.05e-3, seed=9)
        settle(setup, horizon=20e-3)
        assert database_matches_fabric(setup)

    def test_torus_bringup(self):
        spec = make_torus(3, 3)
        setup = staggered(spec, stagger=15e-3, seed=11)
        settle(setup, horizon=40e-3)
        assert database_matches_fabric(setup)
