"""Soak tests: repeated random changes with continuous assimilation."""

import pytest

from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from repro.manager import PARALLEL
from repro.manager.discovery.partial import PartialAssimilationManager
from repro.protocols.entity import ManagementEntity
from repro.sim import Environment
from repro.topology import make_mesh, make_torus
from repro.workloads.faults import FaultInjector


def fm_attachment_switch(setup):
    neighbor = setup.fm.endpoint.ports[0].neighbor()
    return neighbor.device.name


def settle(setup, horizon=0.3):
    """Run until the FM is idle and the fabric quiet."""
    env = setup.env
    deadline = env.now + horizon
    while env.now < deadline:
        if env.peek() > deadline:
            break
        env.step()
    # Drain whatever discovery is still in flight.
    guard = 0
    while setup.fm.is_discovering and guard < 50:
        env.run(until=env.now + 20e-3)
        guard += 1


class TestFaultInjector:
    def test_schedule_is_reproducible(self):
        logs = []
        for _ in range(2):
            setup = build_simulation(make_mesh(3, 3), auto_start=False)
            injector = FaultInjector(setup.fabric, mean_interval=5e-3,
                                     seed=77)
            done = injector.run(faults=6)
            log = setup.env.run(until=done)
            logs.append([(e.kind, e.target) for e in log])
        assert logs[0] == logs[1]

    def test_protected_switch_never_removed(self):
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        injector = FaultInjector(setup.fabric, mean_interval=2e-3,
                                 protect={"sw_0_0"}, seed=3)
        done = injector.run(faults=15)
        log = setup.env.run(until=done)
        removed = [e.target for e in log if e.kind == "remove_switch"]
        assert "sw_0_0" not in removed
        assert len(log) > 0

    def test_validation(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        with pytest.raises(ValueError):
            FaultInjector(setup.fabric, mean_interval=0)
        injector = FaultInjector(setup.fabric)
        injector.run(faults=1)
        with pytest.raises(RuntimeError):
            injector.run(faults=1)


class TestImmediateStop:
    def test_stop_triggers_done_at_stop_time_with_partial_log(self):
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        env = setup.env
        injector = FaultInjector(setup.fabric, mean_interval=5e-3, seed=77)
        done = injector.run(faults=100)

        t_stop = 12e-3
        env.timeout(t_stop).callbacks.append(lambda _ev: injector.stop())
        log = env.run(until=done)

        # ``done`` fires exactly at the stop instant, not after the
        # pending exponential interval elapses.
        assert env.now == pytest.approx(t_stop)
        assert all(event.time <= t_stop for event in log)
        assert log == injector.log

        # No further faults are injected after the stop.
        count = len(injector.log)
        env.run()
        assert len(injector.log) == count

    def test_stop_before_first_fault_yields_empty_log(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        injector = FaultInjector(setup.fabric, mean_interval=1.0, seed=0)
        done = injector.run(faults=5)
        injector.stop()
        log = setup.env.run(until=done)
        assert log == []
        assert setup.env.now == 0.0

    def test_stop_after_completion_is_a_noop(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        injector = FaultInjector(setup.fabric, mean_interval=2e-3, seed=1)
        done = injector.run(faults=3)
        log = setup.env.run(until=done)
        assert len(log) == 3
        injector.stop()  # must not raise or re-trigger ``done``
        assert done.value == log


class TestSoakFullRediscovery:
    def test_fm_converges_after_many_changes(self):
        setup = build_simulation(make_mesh(4, 4), algorithm=PARALLEL)
        run_until_ready(setup)
        injector = FaultInjector(
            setup.fabric, mean_interval=40e-3,
            protect={fm_attachment_switch(setup)}, seed=11,
        )
        done = injector.run(faults=12)
        setup.env.run(until=done)
        settle(setup)

        assert len(injector.log) == 12
        assert len(setup.fm.history) >= 3  # plenty of assimilations ran
        assert database_matches_fabric(setup)

    def test_soak_on_torus_with_link_flaps(self):
        setup = build_simulation(make_torus(3, 3), algorithm=PARALLEL)
        run_until_ready(setup)
        injector = FaultInjector(
            setup.fabric, mean_interval=30e-3,
            protect={fm_attachment_switch(setup)}, seed=29,
        )
        done = injector.run(faults=10)
        setup.env.run(until=done)
        settle(setup)
        assert database_matches_fabric(setup)


class TestSoakPartialAssimilation:
    def test_partial_manager_converges_after_many_changes(self):
        env = Environment()
        spec = make_mesh(4, 4)
        fabric = spec.build(env)
        entities = {
            name: ManagementEntity(device)
            for name, device in fabric.devices.items()
        }
        fm = PartialAssimilationManager(
            fabric.device(spec.fm_host), entities[spec.fm_host],
        )
        fabric.power_up()

        class Setup:
            pass

        setup = Setup()
        setup.env, setup.fabric, setup.fm = env, fabric, fm
        run_until_ready(setup)

        injector = FaultInjector(
            fabric, mean_interval=50e-3,
            protect={fm_attachment_switch(setup)}, seed=5,
        )
        done = injector.run(faults=10)
        env.run(until=done)
        # Let the last burst finish.
        for _ in range(60):
            if not fm.is_discovering and not fm.is_assimilating:
                break
            env.run(until=env.now + 20e-3)
        env.run(until=env.now + 50e-3)

        assert database_matches_fabric(setup)
        # Partial assimilation actually carried (some of) the load.
        partials = [s for s in fm.history if s.algorithm == "partial"]
        assert partials


class TestProtectionExpansion:
    def test_protected_endpoint_shields_attachment_switch(self):
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        attach = fm_attachment_switch(setup)
        injector = FaultInjector(
            setup.fabric, mean_interval=2e-3,
            protect={setup.fm.endpoint.name}, seed=9,
        )
        # The endpoint's attachment switch inherits the protection.
        assert attach in injector.protect
        done = injector.run(faults=25)
        log = setup.env.run(until=done)
        assert log
        for event in log:
            if event.kind in ("remove_switch", "restore_switch"):
                assert event.target != attach
            else:
                assert attach not in event.target.split("<->")

    def test_protecting_a_switch_shields_its_links(self):
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        injector = FaultInjector(
            setup.fabric, mean_interval=2e-3, protect={"sw_1_1"}, seed=4,
        )
        done = injector.run(faults=25)
        log = setup.env.run(until=done)
        flapped = [
            e.target for e in log if e.kind in ("fail_link", "restore_link")
        ]
        assert flapped  # churn did exercise links...
        for target in flapped:
            assert "sw_1_1" not in target.split("<->")  # ...never these


class TestDuringDiscoveryMode:
    def test_requires_an_fm_to_observe(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        with pytest.raises(ValueError):
            FaultInjector(setup.fabric, during_discovery=True)

    def test_faults_land_mid_discovery(self):
        setup = build_simulation(make_mesh(4, 4), algorithm=PARALLEL)
        run_until_ready(setup)
        injector = FaultInjector(
            setup.fabric, mean_interval=2e-3,
            protect={setup.fm.endpoint.name}, seed=0,
            fm=setup.fm, during_discovery=True,
        )
        done = injector.run(faults=6)
        setup.env.run(until=done)
        assert len(injector.log) == 6
        assert injector.mid_discovery_faults >= 1
        assert injector.mid_discovery_faults == sum(
            1 for e in injector.log if e.mid_discovery
        )
        settle(setup)

    def test_hold_is_bounded_on_a_quiet_fabric(self):
        # The first fault finds a quiet, settled fabric — there is no
        # walk to overlap until a fault provokes one.  max_hold must
        # bound that wait so the schedule always completes.
        setup = build_simulation(make_mesh(2, 2), algorithm=PARALLEL)
        run_until_ready(setup)
        injector = FaultInjector(
            setup.fabric, mean_interval=1e-3,
            protect={setup.fm.endpoint.name}, seed=1,
            fm=setup.fm, during_discovery=True, max_hold=4e-3,
        )
        done = injector.run(faults=3)
        setup.env.run(until=done)
        assert len(injector.log) == 3
