"""Tests for multicast tables, capability, and group management."""

import pytest

from repro.capability.multicast import (
    MULTICAST_CAP_ID,
    OP_ADD,
    OP_CLEAR,
    OP_REMOVE,
    encode_op,
)
from repro.experiments.runner import build_simulation, run_until_ready
from repro.fabric import Packet
from repro.fabric.header import RouteHeader
from repro.fabric.packet import PI_MULTICAST
from repro.manager import PARALLEL
from repro.manager.multicast import (
    MulticastError,
    MulticastGroupManager,
    compute_group_tree,
)
from repro.routing.tables import MulticastForwardingTable, MulticastTableError
from repro.topology import make_mesh, make_torus


class TestForwardingTable:
    def test_add_lookup_remove(self):
        table = MulticastForwardingTable(16)
        table.add_port(5, 2)
        table.add_port(5, 7)
        assert table.ports_for(5) == {2, 7}
        table.remove_port(5, 2)
        assert table.ports_for(5) == {7}
        table.remove_port(5, 7)
        assert 5 not in table

    def test_egress_excludes_ingress(self):
        table = MulticastForwardingTable(16)
        table.set_ports(1, {2, 3, 4})
        assert table.egress_ports(1, ingress=3) == [2, 4]
        assert table.egress_ports(1, ingress=9) == [2, 3, 4]

    def test_unprogrammed_group_is_empty(self):
        table = MulticastForwardingTable(16)
        assert table.ports_for(99) == frozenset()
        assert 99 not in table

    def test_validation(self):
        table = MulticastForwardingTable(4)
        with pytest.raises(MulticastTableError):
            table.add_port(1, 4)
        with pytest.raises(MulticastTableError):
            table.add_port(1 << 16, 0)
        with pytest.raises(MulticastTableError):
            MulticastForwardingTable(0)


class TestMulticastCapability:
    @pytest.fixture
    def rig(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        return setup, setup.fabric.device("sw_0_0")

    def test_write_ops_program_table(self, rig):
        setup, switch = rig
        switch.config_space.write(
            MULTICAST_CAP_ID, 0,
            [encode_op(OP_ADD, 7, 1), encode_op(OP_ADD, 7, 3)],
        )
        assert switch.mcast_table.ports_for(7) == {1, 3}
        switch.config_space.write(
            MULTICAST_CAP_ID, 0, [encode_op(OP_REMOVE, 7, 1)]
        )
        assert switch.mcast_table.ports_for(7) == {3}
        switch.config_space.write(
            MULTICAST_CAP_ID, 0, [encode_op(OP_CLEAR, 7)]
        )
        assert 7 not in switch.mcast_table

    def test_read_returns_bitmap(self, rig):
        setup, switch = rig
        switch.mcast_table.set_ports(3, {0, 4})
        bitmap = switch.config_space.read(MULTICAST_CAP_ID, 3, 1)[0]
        assert bitmap == (1 << 0) | (1 << 4)

    def test_bad_op_rejected(self, rig):
        setup, switch = rig
        from repro.capability import ConfigSpaceError

        with pytest.raises(ConfigSpaceError):
            switch.config_space.write(MULTICAST_CAP_ID, 0, [0x7F << 24])


def discovered(spec):
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    setup.fm.start_discovery()
    run_until_ready(setup)
    return setup


def send_multicast(setup, src_name, group):
    header = RouteHeader(pi=PI_MULTICAST, tc=7, ts=1,
                         turn_pointer=0, turn_pool=group)
    setup.fabric.device(src_name).inject(Packet(header=header,
                                                payload=b"MC"))


def attach_counters(setup, names):
    counts = {name: 0 for name in names}
    for name in names:
        entity = setup.entities[name]

        def handler(packet, port, _name=name):
            counts[_name] += 1

        entity.flood_handler = handler
    return counts


class TestGroupTree:
    def test_tree_spans_members(self):
        setup = discovered(make_mesh(3, 3))
        db = setup.fm.database
        members = [setup.fabric.device(n).dsn
                   for n in ("ep_0_0", "ep_2_2", "ep_0_2")]
        tree = compute_group_tree(db, members)
        # Member endpoints and their attachment switches are on it.
        for name in ("ep_0_0", "ep_2_2", "ep_0_2", "sw_0_0", "sw_2_2"):
            assert setup.fabric.device(name).dsn in tree

    def test_needs_two_members(self):
        setup = discovered(make_mesh(2, 2))
        with pytest.raises(MulticastError):
            compute_group_tree(setup.fm.database,
                               [setup.fabric.device("ep_0_0").dsn])

    def test_switch_member_rejected(self):
        setup = discovered(make_mesh(2, 2))
        with pytest.raises(MulticastError, match="not an endpoint"):
            compute_group_tree(
                setup.fm.database,
                [setup.fabric.device("ep_0_0").dsn,
                 setup.fabric.device("sw_0_0").dsn],
            )


class TestEndToEndMulticast:
    def test_every_member_receives_exactly_one_copy(self):
        setup = discovered(make_mesh(3, 3))
        member_names = ["ep_0_0", "ep_2_2", "ep_0_2", "ep_2_0"]
        members = [setup.fabric.device(n).dsn for n in member_names]
        manager = MulticastGroupManager(setup.fm)
        stats = setup.env.run(until=manager.create_group(40, members))
        assert stats.write_failures == 0
        assert stats.switches_programmed >= 3

        counts = attach_counters(setup, list(setup.entities))
        send_multicast(setup, "ep_0_0", group=40)
        setup.env.run(until=setup.env.now + 1e-4)

        for name in member_names[1:]:
            assert counts[name] == 1, name
        # Non-member endpoints receive nothing.
        for name in counts:
            if name.startswith("ep") and name not in member_names:
                assert counts[name] == 0, name

    def test_any_member_can_be_the_source(self):
        setup = discovered(make_torus(3, 3))
        member_names = ["ep_0_0", "ep_1_1", "ep_2_2"]
        members = [setup.fabric.device(n).dsn for n in member_names]
        manager = MulticastGroupManager(setup.fm)
        setup.env.run(until=manager.create_group(9, members))

        for src in member_names:
            counts = attach_counters(setup, member_names)
            send_multicast(setup, src, group=9)
            setup.env.run(until=setup.env.now + 1e-4)
            for name in member_names:
                expected = 0 if name == src else 1
                assert counts[name] == expected, (src, name)

    def test_unprogrammed_group_still_soft_floods(self):
        """Election-style flooding keeps working for unknown groups."""
        setup = discovered(make_mesh(2, 2))
        got = []
        setup.entities["sw_0_0"].flood_handler = \
            lambda packet, port: got.append(packet)
        send_multicast(setup, "ep_0_0", group=12345 & 0xFFFF)
        setup.env.run(until=setup.env.now + 1e-4)
        assert len(got) == 1  # delivered to the entity, not replicated
