"""Tests for path computation over databases and fabrics."""

import pytest

from repro.experiments.runner import build_simulation, run_until_ready
from repro.fabric import Packet, make_management_header
from repro.fabric.packet import PI_DEVICE_MANAGEMENT
from repro.manager import PARALLEL
from repro.routing.paths import (
    PathError,
    db_endpoint_routes,
    db_route,
    fabric_endpoint_routes,
    fabric_route,
)
from repro.topology import make_mesh, make_torus


@pytest.fixture(scope="module")
def discovered():
    setup = build_simulation(make_mesh(3, 3), algorithm=PARALLEL,
                             auto_start=False)
    setup.fm.start_discovery()
    run_until_ready(setup)
    return setup


def deliver_and_check(setup, src_name, dst_name, pool, out_port):
    """Inject a packet along (pool, out_port) and assert delivery."""
    got = []
    dst = setup.fabric.device(dst_name)
    previous = dst.local_handler
    dst.local_handler = lambda packet, port: got.append(packet)
    header = make_management_header(pool.pool, pool.bits,
                                    pi=PI_DEVICE_MANAGEMENT)
    setup.fabric.device(src_name).inject(Packet(header=header),
                                         port_index=out_port)
    setup.env.run(until=setup.env.now + 1e-4)
    dst.local_handler = previous
    return got


class TestDbRoutes:
    def test_route_to_far_endpoint_delivers(self, discovered):
        db = discovered.fm.database
        src = discovered.fabric.device("ep_0_0")
        dst = discovered.fabric.device("ep_2_2")
        pool, out_port = db_route(db, src.dsn, dst.dsn)
        got = deliver_and_check(discovered, "ep_0_0", "ep_2_2",
                                pool, out_port)
        assert len(got) == 1

    def test_route_between_non_fm_endpoints(self, discovered):
        db = discovered.fm.database
        src = discovered.fabric.device("ep_1_2")
        dst = discovered.fabric.device("ep_2_0")
        pool, out_port = db_route(db, src.dsn, dst.dsn)
        got = deliver_and_check(discovered, "ep_1_2", "ep_2_0",
                                pool, out_port)
        assert len(got) == 1

    def test_self_route_is_empty(self, discovered):
        db = discovered.fm.database
        dsn = discovered.fabric.device("ep_0_0").dsn
        pool, out_port = db_route(db, dsn, dsn)
        assert pool.bits == 0

    def test_endpoint_routes_cover_all_others(self, discovered):
        db = discovered.fm.database
        src = discovered.fabric.device("ep_0_0")
        routes = db_endpoint_routes(db, src.dsn)
        assert len(routes) == 8  # 9 endpoints minus self

    def test_unknown_destination_raises(self, discovered):
        db = discovered.fm.database
        src = discovered.fabric.device("ep_0_0")
        with pytest.raises(PathError):
            db_route(db, src.dsn, 0xFFFF_FFFF)

    def test_route_length_is_shortest(self, discovered):
        """Mesh corner to corner: 4 switch hops of 4 bits plus the
        endpoint attachment hops (2 more switches traversed)."""
        db = discovered.fm.database
        src = discovered.fabric.device("ep_0_0")
        dst = discovered.fabric.device("ep_2_2")
        pool, _ = db_route(db, src.dsn, dst.dsn)
        # Path ep - sw00 - sw01/sw10 ... sw22 - ep: 5 switches traversed.
        assert pool.bits == 5 * 4


class TestFabricRoutes:
    def test_ground_truth_route_delivers(self, discovered):
        pool, out_port = fabric_route(discovered.fabric, "ep_0_1", "ep_2_1")
        got = deliver_and_check(discovered, "ep_0_1", "ep_2_1",
                                pool, out_port)
        assert len(got) == 1

    def test_unreachable_after_partition(self):
        setup = build_simulation(make_mesh(1, 3), algorithm=PARALLEL,
                                 auto_start=False)
        setup.fabric.remove_device("sw_0_1")
        with pytest.raises(PathError):
            fabric_route(setup.fabric, "ep_0_0", "ep_0_2")

    def test_endpoint_routes_skip_unreachable(self):
        setup = build_simulation(make_mesh(1, 3), algorithm=PARALLEL,
                                 auto_start=False)
        setup.fabric.remove_device("sw_0_1")
        routes = fabric_endpoint_routes(setup.fabric, "ep_0_0")
        assert routes == {}

    def test_torus_routes_deliver_everywhere(self):
        setup = build_simulation(make_torus(3, 3), algorithm=PARALLEL,
                                 auto_start=False)
        routes = fabric_endpoint_routes(setup.fabric, "ep_0_0")
        assert len(routes) == 8
        for dst, (pool, out_port) in routes.items():
            got = deliver_and_check(setup, "ep_0_0", dst, pool, out_port)
            assert len(got) == 1, dst
