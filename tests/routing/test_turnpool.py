"""Unit and property tests for turn-pool source routing."""

import pytest
from hypothesis import given, strategies as st

from repro.routing.turnpool import (
    Hop,
    TurnPool,
    TurnPoolError,
    backward_egress,
    build_turn_pool,
    encode_turn,
    forward_egress,
    read_backward_turn,
    read_forward_turn,
    turn_width,
    walk_forward,
)


class TestTurnWidth:
    @pytest.mark.parametrize(
        "nports,width",
        [(2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (16, 4), (256, 8)],
    )
    def test_widths(self, nports, width):
        assert turn_width(nports) == width

    def test_single_port_device_cannot_route(self):
        with pytest.raises(TurnPoolError):
            turn_width(1)


class TestTurnEncoding:
    def test_forward_inverse_of_encode(self):
        nports = 16
        for in_port in range(nports):
            for out_port in range(nports):
                if in_port == out_port:
                    continue
                turn = encode_turn(in_port, out_port, nports)
                assert forward_egress(in_port, turn, nports) == out_port

    def test_backward_undoes_forward(self):
        nports = 16
        for in_port in range(nports):
            for out_port in range(nports):
                if in_port == out_port:
                    continue
                turn = encode_turn(in_port, out_port, nports)
                # Backward packet enters at the forward egress and must
                # leave through the forward ingress.
                assert backward_egress(out_port, turn, nports) == in_port

    def test_uturn_rejected(self):
        with pytest.raises(TurnPoolError):
            encode_turn(3, 3, 16)

    def test_port_bounds_checked(self):
        with pytest.raises(TurnPoolError):
            encode_turn(16, 0, 16)
        with pytest.raises(TurnPoolError):
            forward_egress(-1, 0, 16)


class TestBuildAndWalk:
    def test_empty_route_is_self(self):
        pool = build_turn_pool([])
        assert pool.bits == 0
        assert pool.pool == 0

    def test_single_hop(self):
        pool = build_turn_pool([Hop(16, 2, 7)])
        assert pool.bits == 4
        turn, pointer = read_forward_turn(pool.pool, pool.bits, 16)
        assert pointer == 0
        assert forward_egress(2, turn, 16) == 7

    def test_walk_matches_construction(self):
        hops = [Hop(16, 0, 5), Hop(16, 3, 9), Hop(4, 1, 2)]
        pool = build_turn_pool(hops)
        egresses = walk_forward(pool, [(h.nports, h.in_port) for h in hops])
        assert egresses == [5, 9, 2]

    def test_route_too_long_rejected(self):
        hops = [Hop(256, 0, 1)] * 9  # 9 x 8 = 72 bits > 64
        with pytest.raises(TurnPoolError, match="turn bits"):
            build_turn_pool(hops)

    def test_forward_read_exhaustion_detected(self):
        pool = build_turn_pool([Hop(16, 0, 5)])
        _, pointer = read_forward_turn(pool.pool, pool.bits, 16)
        with pytest.raises(TurnPoolError):
            read_forward_turn(pool.pool, pointer, 16)

    def test_backward_read_overflow_detected(self):
        with pytest.raises(TurnPoolError):
            read_backward_turn(0, 62, 16)  # 62 + 4 > 64

    def test_turnpool_equality_and_hash(self):
        a = build_turn_pool([Hop(16, 0, 5)])
        b = build_turn_pool([Hop(16, 0, 5)])
        c = build_turn_pool([Hop(16, 0, 6)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


# -- property: any route is exactly reversible ------------------------------

@st.composite
def random_path(draw):
    """A random multi-hop path through switches of varied radix."""
    nhops = draw(st.integers(1, 8))
    hops = []
    for _ in range(nhops):
        nports = draw(st.sampled_from([2, 3, 4, 8, 16]))
        in_port = draw(st.integers(0, nports - 1))
        out_port = draw(
            st.integers(0, nports - 1).filter(lambda p, i=in_port: p != i)
        )
        hops.append(Hop(nports, in_port, out_port))
    return hops


@given(random_path())
def test_property_forward_then_backward_returns_to_source(hops):
    total_bits = sum(turn_width(h.nports) for h in hops)
    if total_bits > 64:
        return  # longer than the pool; construction would reject it
    pool = build_turn_pool(hops)

    # Forward traversal.
    pointer = pool.bits
    for hop in hops:
        turn, pointer = read_forward_turn(pool.pool, pointer, hop.nports)
        assert forward_egress(hop.in_port, turn, hop.nports) == hop.out_port
    assert pointer == 0

    # Backward traversal visits switches in reverse order, entering at
    # each hop's forward egress, and must exit at the forward ingress.
    for hop in reversed(hops):
        turn, pointer = read_backward_turn(pool.pool, pointer, hop.nports)
        assert backward_egress(hop.out_port, turn, hop.nports) == hop.in_port
    assert pointer == pool.bits
