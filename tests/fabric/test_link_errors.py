"""Unit + integration tests for the link error model (lossy channels)."""

import pytest

from repro.fabric import Fabric, FabricParams, Packet
from repro.fabric.header import RouteHeader
from repro.fabric.packet import PI_APPLICATION
from repro.fabric.phy import (
    DELIVER_CORRUPT,
    DELIVER_LOST,
    DELIVER_OK,
    LinkErrorModel,
)
from repro.routing.turnpool import Hop, build_turn_pool
from repro.sim import Environment


class TestLinkErrorModel:
    def test_perfect_channel_gets_no_model(self):
        assert LinkErrorModel.for_link(FabricParams(), "sw0.p1") is None

    def test_lossy_channel_gets_model(self):
        params = FabricParams(bit_error_rate=1e-6)
        model = LinkErrorModel.for_link(params, "sw0.p1")
        assert model is not None
        assert model.bit_error_rate == 1e-6

    def test_streams_deterministic_per_link_name(self):
        params = FabricParams(bit_error_rate=1e-3, error_seed=3)
        a1 = LinkErrorModel.for_link(params, "linkA")
        a2 = LinkErrorModel.for_link(params, "linkA")
        b = LinkErrorModel.for_link(params, "linkB")
        seq_a1 = [a1.classify(64) for _ in range(200)]
        seq_a2 = [a2.classify(64) for _ in range(200)]
        seq_b = [b.classify(64) for _ in range(200)]
        assert seq_a1 == seq_a2
        assert seq_a1 != seq_b  # independent per-link streams

    def test_streams_depend_on_seed(self):
        lossy = FabricParams(bit_error_rate=1e-3)
        s0 = LinkErrorModel.for_link(lossy, "l")
        s1 = LinkErrorModel.for_link(
            FabricParams(bit_error_rate=1e-3, error_seed=1), "l"
        )
        assert [s0.classify(64) for _ in range(200)] != \
            [s1.classify(64) for _ in range(200)]

    def test_corrupt_probability_formula(self):
        model = LinkErrorModel(1e-4, 0.0, 0.0, 1.0, seed=0)
        expect = 1.0 - (1.0 - 1e-4) ** (8 * 100)
        assert model.corrupt_probability(100) == pytest.approx(expect)
        # Memoized: second lookup returns the identical float.
        assert model.corrupt_probability(100) is model._corrupt_cache[100]

    def test_classify_partitions_loss_before_corruption(self):
        model = LinkErrorModel(0.0, 0.999, 0.0, 1.0, seed=0)
        verdicts = {model.classify(64) for _ in range(100)}
        assert DELIVER_LOST in verdicts
        assert DELIVER_CORRUPT not in verdicts

        pure_ber = LinkErrorModel(1e-2, 0.0, 0.0, 1.0, seed=0)
        verdicts = {pure_ber.classify(512) for _ in range(100)}
        assert DELIVER_CORRUPT in verdicts
        assert DELIVER_LOST not in verdicts

    def test_classify_counts_fates(self):
        model = LinkErrorModel(1e-3, 0.2, 0.0, 1.0, seed=0)
        n = 500
        ok = sum(1 for _ in range(n) if model.classify(64) == DELIVER_OK)
        assert ok + model.lost + model.corrupted == n
        assert model.lost > 0 and model.corrupted > 0

    def test_corrupt_bytes_flips_reported_bits(self):
        model = LinkErrorModel(1e-4, 0.0, 0.0, 1.0, seed=42)
        data = bytes(range(64))
        corrupted, flips = model.corrupt_bytes(data)
        assert flips == 1  # burst length 1.0 = single-bit errors
        assert len(corrupted) == len(data)
        differing_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(data, corrupted)
        )
        assert differing_bits == 1

    def test_burst_corruption_flips_multiple_bits(self):
        model = LinkErrorModel(1e-4, 0.0, 0.0, 8.0, seed=0)
        total_flips = sum(
            model.corrupt_bytes(bytes(64))[1] for _ in range(200)
        )
        # Geometric with mean 8: the average must be well above 1.
        assert total_flips / 200 > 3.0

    def test_duplicate_draws_and_counts(self):
        model = LinkErrorModel(0.0, 0.0, 0.9, 1.0, seed=0)
        hits = sum(1 for _ in range(100) if model.duplicate())
        assert hits == model.duplicated
        assert hits > 50


class TestParamsValidation:
    @pytest.mark.parametrize("field", [
        "bit_error_rate", "packet_loss_rate", "duplicate_rate",
    ])
    @pytest.mark.parametrize("value", [-0.1, 1.0, 1.5])
    def test_rates_must_be_in_unit_interval(self, field, value):
        with pytest.raises(ValueError, match=field):
            FabricParams(**{field: value})

    def test_burst_length_must_be_at_least_one(self):
        with pytest.raises(ValueError, match="error_burst_length"):
            FabricParams(error_burst_length=0.5)

    def test_lossy_property(self):
        assert not FabricParams().lossy
        assert FabricParams(bit_error_rate=1e-9).lossy
        assert FabricParams(packet_loss_rate=0.1).lossy
        assert FabricParams(duplicate_rate=0.1).lossy

    def test_round_trip_through_dict(self):
        params = FabricParams(
            bit_error_rate=1e-5, packet_loss_rate=0.01,
            duplicate_rate=0.005, error_burst_length=4.0, error_seed=9,
            vc_types=("bvc", "mvc"),
        )
        assert FabricParams.from_dict(params.to_dict()) == params


def lossy_pair(params):
    """ep0 -- sw -- ep1 with the given (lossy) fabric parameters."""
    env = Environment()
    fabric = Fabric(env, params)
    fabric.add_endpoint("ep0")
    fabric.add_endpoint("ep1")
    fabric.add_switch("sw")
    fabric.connect("ep0", 0, "sw", 0)
    fabric.connect("sw", 1, "ep1", 0)
    fabric.power_up()
    return env, fabric


def data_packet(pool, payload_bytes=200):
    header = RouteHeader(pi=PI_APPLICATION, tc=0,
                         turn_pointer=pool.bits, turn_pool=pool.pool)
    return Packet(header=header, payload=bytes(payload_bytes))


def total_port_stat(fabric, name):
    return sum(
        port.stats[name]
        for dev in fabric.devices.values() for port in dev.ports
    )


class TestLossyDelivery:
    def test_lost_packets_counted_and_credits_returned(self):
        params = FabricParams(packet_loss_rate=0.4, error_seed=1)
        env, fabric = lossy_pair(params)
        pool = build_turn_pool([Hop(16, 0, 1)])
        arrivals = []
        fabric.device("ep1").local_handler = (
            lambda packet, port: arrivals.append(packet)
        )
        for _ in range(25):
            fabric.device("ep0").inject(data_packet(pool))
        env.run()
        lost = total_port_stat(fabric, "rx_lost")
        assert lost > 0
        # Conservation: every injected packet either arrives or is lost
        # on exactly one hop.
        assert len(arrivals) + lost == 25
        for device in fabric.devices.values():
            for port in device.ports:
                for counter in port.credits:
                    assert counter.available == counter.capacity

    def test_corrupted_packets_fail_crc_and_are_dropped(self):
        params = FabricParams(bit_error_rate=2e-4, error_seed=1)
        env, fabric = lossy_pair(params)
        pool = build_turn_pool([Hop(16, 0, 1)])
        arrivals = []
        fabric.device("ep1").local_handler = (
            lambda packet, port: arrivals.append(packet)
        )
        for _ in range(25):
            fabric.device("ep0").inject(data_packet(pool, 400))
        env.run()
        dropped = total_port_stat(fabric, "rx_crc_dropped")
        assert dropped > 0
        assert len(arrivals) + dropped \
            + total_port_stat(fabric, "rx_undetected_errors") == 25
        for device in fabric.devices.values():
            for port in device.ports:
                for counter in port.credits:
                    assert counter.available == counter.capacity

    def test_duplicates_replayed_and_credits_returned(self):
        params = FabricParams(duplicate_rate=0.3, error_seed=1)
        env, fabric = lossy_pair(params)
        pool = build_turn_pool([Hop(16, 0, 1)])
        arrivals = []
        fabric.device("ep1").local_handler = (
            lambda packet, port: arrivals.append(packet)
        )
        for _ in range(25):
            fabric.device("ep0").inject(data_packet(pool))
        env.run()
        replays = total_port_stat(fabric, "tx_replays")
        assert replays > 0
        # Every copy is a real delivery: arrivals exceed injections.
        assert len(arrivals) > 25
        for device in fabric.devices.values():
            for port in device.ports:
                for counter in port.credits:
                    assert counter.available == counter.capacity

    def test_lossy_runs_are_reproducible(self):
        def run_once():
            params = FabricParams(bit_error_rate=1e-4,
                                  packet_loss_rate=0.05, error_seed=5)
            env, fabric = lossy_pair(params)
            pool = build_turn_pool([Hop(16, 0, 1)])
            times = []
            fabric.device("ep1").local_handler = (
                lambda packet, port: times.append(env.now)
            )
            for _ in range(30):
                fabric.device("ep0").inject(data_packet(pool, 300))
            env.run()
            return times, total_port_stat(fabric, "rx_lost"), \
                total_port_stat(fabric, "rx_crc_dropped")

        assert run_once() == run_once()

    def test_zero_rates_take_perfect_channel_fast_path(self):
        env, fabric = lossy_pair(FabricParams())
        for link in fabric.links:
            assert link.error_model is None
        for device in fabric.devices.values():
            for port in device.ports:
                assert port._error_model is None
