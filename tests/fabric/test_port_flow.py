"""Integration tests: credit backpressure, arbitration, link epochs."""

import pytest

from repro.fabric import Fabric, FabricParams, Packet
from repro.fabric.header import RouteHeader
from repro.fabric.packet import PI_APPLICATION, PI_DEVICE_MANAGEMENT
from repro.routing.turnpool import Hop, build_turn_pool
from repro.sim import Environment


def two_endpoints_one_switch(params=None):
    """ep0 -- sw -- ep1 with configurable fabric parameters."""
    env = Environment()
    fabric = Fabric(env, params or FabricParams())
    fabric.add_endpoint("ep0")
    fabric.add_endpoint("ep1")
    fabric.add_switch("sw")
    fabric.connect("ep0", 0, "sw", 0)
    fabric.connect("sw", 1, "ep1", 0)
    fabric.power_up()
    return env, fabric


def data_packet(pool, payload_bytes=200, tc=0):
    header = RouteHeader(pi=PI_APPLICATION, tc=tc,
                         turn_pointer=pool.bits, turn_pool=pool.pool)
    return Packet(header=header, payload=bytes(payload_bytes))


class TestCreditBackpressure:
    def test_sender_stalls_when_receiver_buffer_full(self):
        """With a slow consumer and tiny buffers the sender's queue
        drains strictly at the pace credits come back."""
        params = FabricParams(rx_buffer_credits=4)
        env, fabric = two_endpoints_one_switch(params)
        pool = build_turn_pool([Hop(16, 0, 1)])

        # Stop ep1 from consuming: packets pile up in its input buffer.
        # (No local handler: the device still consumes and releases, so
        # instead we block the switch's egress by taking ep1 down...
        # simpler: watch the credit counter directly.)
        arrivals = []
        fabric.device("ep1").local_handler = (
            lambda packet, port: arrivals.append(env.now)
        )
        ep0 = fabric.device("ep0")
        for _ in range(20):
            ep0.inject(data_packet(pool, payload_bytes=200))
        env.run()
        assert len(arrivals) == 20
        # Inter-arrival spacing is at least the serialization time of
        # one packet (no overtaking, no loss).
        size = 8 + 16 + 200 + 4
        min_gap = params.tx_time(size) * 0.99
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap >= min_gap for gap in gaps)

    def test_credits_return_after_consumption(self):
        env, fabric = two_endpoints_one_switch()
        pool = build_turn_pool([Hop(16, 0, 1)])
        fabric.device("ep1").local_handler = lambda p, port: None
        ep0 = fabric.device("ep0")
        for _ in range(5):
            ep0.inject(data_packet(pool))
        env.run()
        # All credits returned everywhere once the fabric is idle.
        for device in fabric.devices.values():
            for port in device.ports:
                for counter in port.credits:
                    assert counter.available == counter.capacity

    def test_oversized_packet_rejected_by_credit_check(self):
        """A packet larger than the whole rx buffer cannot transit."""
        from repro.fabric import CreditError

        params = FabricParams(rx_buffer_credits=2)  # 128 B of buffer
        env, fabric = two_endpoints_one_switch(params)
        pool = build_turn_pool([Hop(16, 0, 1)])
        ep0 = fabric.device("ep0")
        with pytest.raises(CreditError, match="receive buffer"):
            ep0.inject(data_packet(pool, payload_bytes=512))


class TestLinkEpochs:
    def test_packet_in_flight_during_link_down_is_dropped(self):
        """A link failing before the packet head crosses it drops the
        packet (the cut-through model hands packets over at head
        arrival, ~100 ns after transmission start, so later failures
        belong to the next hop's epoch)."""
        env, fabric = two_endpoints_one_switch()
        pool = build_turn_pool([Hop(16, 0, 1)])
        got = []
        fabric.device("ep1").local_handler = (
            lambda packet, port: got.append(packet)
        )
        ep0 = fabric.device("ep0")
        ep0.inject(data_packet(pool, payload_bytes=900))

        def chop(_event):
            fabric.fail_link("ep0", "sw")

        env.timeout(50e-9).callbacks.append(chop)  # before head arrival
        env.run()
        assert got == []
        assert fabric.device("sw").ports[0].stats["rx_dropped"] == 1

    def test_link_recovers_cleanly_after_flap(self):
        env, fabric = two_endpoints_one_switch()
        pool = build_turn_pool([Hop(16, 0, 1)])
        got = []
        fabric.device("ep1").local_handler = (
            lambda packet, port: got.append(packet)
        )
        fabric.fail_link("ep0", "sw")
        fabric.restore_link("ep0", "sw")
        env.run()
        fabric.device("ep0").inject(data_packet(pool))
        env.run()
        assert len(got) == 1
        # Credit accounting fully resynchronized.
        port = fabric.device("ep0").ports[0]
        for counter in port.credits:
            assert counter.available == counter.capacity

    def test_queued_packets_dropped_on_down_do_not_leak_buffers(self):
        env, fabric = two_endpoints_one_switch()
        pool = build_turn_pool([Hop(16, 0, 1)])
        ep0 = fabric.device("ep0")
        # Queue a burst, then kill the link before it drains.
        for _ in range(30):
            ep0.inject(data_packet(pool, payload_bytes=400))

        def chop(_event):
            fabric.fail_link("sw", "ep1")

        env.timeout(3e-6).callbacks.append(chop)
        env.run()
        # The switch's ingress buffers must all be free again (the
        # dropped packets released them via their release callbacks).
        sw = fabric.device("sw")
        assert all(u == 0 for u in sw.ports[0]._rx_in_use) or \
            fabric.device("ep0").ports[0].credits[0].available > 0


class TestArbitration:
    def test_round_trip_under_bidirectional_load(self):
        """Requests and completions share links without deadlock."""
        env, fabric = two_endpoints_one_switch()
        there = build_turn_pool([Hop(16, 0, 1)])
        got = []

        def responder(packet, port):
            reply = Packet(header=packet.header.reversed(),
                           payload=b"r" * 64)
            fabric.device("ep1").inject(reply)

        fabric.device("ep1").local_handler = responder
        fabric.device("ep0").local_handler = (
            lambda packet, port: got.append(packet)
        )
        ep0 = fabric.device("ep0")
        for _ in range(50):
            header = RouteHeader(pi=PI_DEVICE_MANAGEMENT, tc=7, ts=1,
                                 turn_pointer=there.bits,
                                 turn_pool=there.pool)
            ep0.inject(Packet(header=header, payload=b"q" * 64))
        env.run()
        assert len(got) == 50

    def test_strict_priority_between_vcs_under_sustained_load(self):
        """VC1 (management) drains ahead of a VC0 backlog."""
        env, fabric = two_endpoints_one_switch()
        pool = build_turn_pool([Hop(16, 0, 1)])
        order = []

        def tagger(packet, port):
            order.append(packet.header.tc)

        fabric.device("ep1").local_handler = tagger
        ep0 = fabric.device("ep0")
        # Interleave: 10 data, then 10 management.
        for _ in range(10):
            ep0.inject(data_packet(pool, payload_bytes=800, tc=0))
        for _ in range(10):
            header = RouteHeader(pi=PI_DEVICE_MANAGEMENT, tc=7, ts=1,
                                 turn_pointer=pool.bits,
                                 turn_pool=pool.pool)
            ep0.inject(Packet(header=header))
        env.run()
        assert len(order) == 20
        # All management packets arrive within the first half of the
        # sequence (at most one data packet can be ahead per hop).
        mgmt_positions = [i for i, tc in enumerate(order) if tc == 7]
        assert max(mgmt_positions) < 13


class TestVcStats:
    def test_idle_port_reads_empty_and_full(self):
        """Unmaterialized ports snapshot as empty queues / full credits."""
        env, fabric = two_endpoints_one_switch()
        for name in ("ep0", "ep1", "sw"):
            for port in fabric.device(name).ports:
                for row in port.vc_stats():
                    assert row["type"] in ("bvc", "ovc", "movc")
                    assert row["tx_queued"] == 0
                    assert row["tx_bypass_queued"] == 0
                    assert row["credits_available"] == row["credits_capacity"]
                    assert row["rx_units_in_use"] == 0

    def test_snapshot_sees_queued_packets(self):
        env, fabric = two_endpoints_one_switch()
        pool = build_turn_pool([Hop(16, 0, 1)])
        ep0 = fabric.device("ep0")
        for _ in range(5):
            ep0.inject(data_packet(pool, payload_bytes=200))
        # Nothing has run yet: all five sit in the egress VC0 queue.
        rows = ep0.ports[0].vc_stats()
        assert rows[0]["tx_queued"] == 5
        assert rows[1]["tx_queued"] == 0
        env.run()
        assert all(r["tx_queued"] == 0 for r in ep0.ports[0].vc_stats())

    def test_snapshot_is_pure(self):
        """vc_stats neither materializes state nor schedules events."""
        env, fabric = two_endpoints_one_switch()
        port = fabric.device("ep0").ports[0]
        types_before = [r["type"] for r in port.vc_stats()]
        assert port._tx_vcs is None  # reading did not materialize
        assert port.vc_stats() == port.vc_stats()
        pool = build_turn_pool([Hop(16, 0, 1)])
        fabric.device("ep0").inject(data_packet(pool))
        env.run()
        # Reported VC types are stable across materialization.
        assert [r["type"] for r in port.vc_stats()] == types_before
