"""Tests for the packet tracer."""

import pytest

from repro.experiments.runner import build_simulation, run_until_ready
from repro.fabric import Packet, make_management_header
from repro.fabric.packet import PI_DEVICE_MANAGEMENT, PI_EVENT
from repro.fabric.trace import PacketTracer, TraceEvent
from repro.manager import PARALLEL
from repro.routing.turnpool import Hop, build_turn_pool
from repro.topology import make_mesh


@pytest.fixture
def setup():
    return build_simulation(make_mesh(2, 2), algorithm=PARALLEL,
                            auto_start=False)


def send_one(setup, hops, payload=b"x"):
    pool = build_turn_pool(hops)
    header = make_management_header(pool.pool, pool.bits,
                                    pi=PI_DEVICE_MANAGEMENT)
    packet = Packet(header=header, payload=payload)
    setup.fabric.device("ep_0_0").inject(packet)
    setup.env.run(until=setup.env.now + 1e-4)
    return packet


class TestTracer:
    def test_path_reconstruction(self, setup):
        tracer = PacketTracer().attach(setup.fabric)
        # ep_0_0 -> sw_0_0 (in p4, out p1 east) -> sw_0_1, terminate.
        packet = send_one(setup, [Hop(16, 4, 1)])
        path = tracer.path_of(packet.pkt_id)
        assert path == ["ep_0_0", "sw_0_0", "sw_0_1"]

    def test_event_kinds_in_lifecycle_order(self, setup):
        tracer = PacketTracer().attach(setup.fabric)
        packet = send_one(setup, [Hop(16, 4, 1)])
        kinds = [e.kind for e in tracer.events_for(packet.pkt_id)]
        assert kinds[0] == "inject"
        assert kinds[-1] == "deliver"
        assert "forward" in kinds
        assert kinds.count("rx") == 2  # switch + destination

    def test_pi_filter(self, setup):
        tracer = PacketTracer(pi_filter={PI_EVENT}).attach(setup.fabric)
        packet = send_one(setup, [Hop(16, 4, 1)])
        assert tracer.events_for(packet.pkt_id) == []
        assert tracer.dropped_by_filter > 0

    def test_device_filter(self, setup):
        tracer = PacketTracer(device_filter={"sw_0_0"}).attach(setup.fabric)
        packet = send_one(setup, [Hop(16, 4, 1)])
        devices = {e.device for e in tracer.events_for(packet.pkt_id)}
        assert devices == {"sw_0_0"}

    def test_ring_buffer_bounded(self, setup):
        tracer = PacketTracer(limit=10).attach(setup.fabric)
        for _ in range(8):
            send_one(setup, [Hop(16, 4, 1)])
        assert len(tracer) == 10

    def test_drop_recorded(self, setup):
        tracer = PacketTracer().attach(setup.fabric)
        setup.fabric.fail_link("sw_0_1", "ep_0_1")
        setup.env.run()
        # Route toward the dead endpoint: sw_0_0 east then down port 4.
        packet = send_one(setup, [Hop(16, 4, 1), Hop(16, 3, 4)])
        kinds = [e.kind for e in tracer.events_for(packet.pkt_id)]
        assert "drop" in kinds
        drop = [e for e in tracer.events_for(packet.pkt_id)
                if e.kind == "drop"][0]
        assert "down" in drop.detail

    def test_render_is_readable(self, setup):
        tracer = PacketTracer().attach(setup.fabric)
        packet = send_one(setup, [Hop(16, 4, 1)])
        text = tracer.render(last=5)
        assert f"pkt#{packet.pkt_id}" in text
        assert "deliver" in text

    def test_counts_and_detach(self, setup):
        tracer = PacketTracer().attach(setup.fabric)
        send_one(setup, [Hop(16, 4, 1)])
        counts = tracer.counts()
        assert counts["inject"] == 1
        assert counts["deliver"] == 1
        before = len(tracer)
        PacketTracer.detach(setup.fabric)
        send_one(setup, [Hop(16, 4, 1)])
        assert len(tracer) == before

    def test_whole_discovery_traced(self, setup):
        tracer = PacketTracer(pi_filter={PI_DEVICE_MANAGEMENT},
                              limit=50_000).attach(setup.fabric)
        setup.fm.start_discovery()
        run_until_ready(setup)
        counts = tracer.counts()
        # Every request got injected and delivered somewhere; loopback
        # reads never touch the wire so inject >= deliver is not
        # guaranteed — but the volumes must be consistent.
        assert counts["deliver"] >= counts["inject"] / 2
        assert counts["drop"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketTracer(limit=0)
