"""Unit tests for CRC generators and route-header serialization."""

import binascii

import pytest
from hypothesis import given, strategies as st

from repro.fabric.crc import crc8, crc32
from repro.fabric.header import (
    HEADER_BYTES,
    TURN_POOL_BITS,
    HeaderError,
    RouteHeader,
)


class TestCRC:
    def test_crc8_known_vector(self):
        # CRC-8/ATM of "123456789" is 0xF4.
        assert crc8(b"123456789") == 0xF4

    def test_crc32_matches_zlib(self):
        for data in (b"", b"a", b"123456789", bytes(range(256))):
            assert crc32(data) == binascii.crc32(data)

    def test_crc8_detects_single_bit_flip(self):
        data = bytearray(b"discovery packet")
        reference = crc8(bytes(data))
        data[3] ^= 0x10
        assert crc8(bytes(data)) != reference


class TestRouteHeader:
    def test_pack_unpack_roundtrip(self):
        header = RouteHeader(
            pi=4, tc=7, direction=0, oo=0, ts=1,
            credits_required=3, turn_pointer=12, turn_pool=0xABC,
        )
        raw = header.pack()
        assert len(raw) == HEADER_BYTES
        decoded = RouteHeader.unpack(raw)
        assert decoded == header.copy()  # CRC not stored on the object

    def test_crc_detects_corruption(self):
        raw = bytearray(RouteHeader(pi=4, tc=7).pack())
        raw[0] ^= 0x01
        with pytest.raises(HeaderError, match="CRC"):
            RouteHeader.unpack(bytes(raw))

    def test_unpack_short_buffer_rejected(self):
        with pytest.raises(HeaderError):
            RouteHeader.unpack(b"\x00" * (HEADER_BYTES - 1))

    @pytest.mark.parametrize(
        "field,value",
        [
            ("pi", 256),
            ("tc", 8),
            ("direction", 2),
            ("oo", -1),
            ("credits_required", 32),
            ("turn_pointer", 128),
        ],
    )
    def test_field_bounds_enforced(self, field, value):
        with pytest.raises(HeaderError):
            RouteHeader(**{field: value})

    def test_turn_pointer_beyond_pool_rejected(self):
        with pytest.raises(HeaderError):
            RouteHeader(turn_pointer=TURN_POOL_BITS + 1)

    def test_reversed_flips_direction(self):
        header = RouteHeader(pi=4, tc=5, turn_pointer=0, turn_pool=0x55)
        back = header.reversed()
        assert back.direction == 1
        assert back.turn_pointer == 0
        assert back.turn_pool == 0x55
        assert back.tc == 5  # response uses the request's traffic class

    def test_reversed_requires_forward(self):
        header = RouteHeader(direction=1)
        with pytest.raises(HeaderError):
            header.reversed()

    @given(
        pi=st.integers(0, 255),
        tc=st.integers(0, 7),
        direction=st.integers(0, 1),
        oo=st.integers(0, 1),
        ts=st.integers(0, 1),
        credits_required=st.integers(0, 31),
        turn_pointer=st.integers(0, TURN_POOL_BITS),
        turn_pool=st.integers(0, (1 << TURN_POOL_BITS) - 1),
    )
    def test_roundtrip_property(self, **fields):
        header = RouteHeader(**fields)
        assert RouteHeader.unpack(header.pack()) == header


class TestPacketWireFormat:
    def test_roundtrip_with_payload(self):
        from repro.fabric.packet import Packet

        packet = Packet(
            header=RouteHeader(pi=4, tc=7, ts=1, turn_pointer=12,
                               turn_pool=0xBEEF),
            payload=b"\x01\x02\x03\x04",
        )
        decoded = Packet.from_bytes(packet.to_bytes())
        assert decoded.header == packet.header
        assert decoded.payload == packet.payload

    def test_roundtrip_empty_payload(self):
        from repro.fabric.packet import Packet

        packet = Packet(header=RouteHeader(pi=5))
        raw = packet.to_bytes()
        assert len(raw) == HEADER_BYTES  # no PCRC without payload
        assert Packet.from_bytes(raw).payload == b""

    def test_payload_corruption_detected(self):
        from repro.fabric.packet import Packet, PacketError

        raw = bytearray(
            Packet(header=RouteHeader(pi=4), payload=b"payload").to_bytes()
        )
        raw[HEADER_BYTES + 2] ^= 0x40
        with pytest.raises(PacketError, match="PCRC"):
            Packet.from_bytes(bytes(raw))

    def test_header_corruption_detected(self):
        from repro.fabric.packet import Packet

        raw = bytearray(
            Packet(header=RouteHeader(pi=4), payload=b"x").to_bytes()
        )
        raw[1] ^= 0x01
        with pytest.raises(HeaderError, match="CRC"):
            Packet.from_bytes(bytes(raw))

    def test_truncated_pcrc_detected(self):
        from repro.fabric.packet import Packet, PacketError

        raw = Packet(header=RouteHeader(pi=4), payload=b"abc").to_bytes()
        # Leave fewer than 4 trailing bytes: the PCRC cannot be present.
        with pytest.raises(PacketError, match="truncated"):
            Packet.from_bytes(raw[:HEADER_BYTES + 3])
        # A shorter cut still fails, via the PCRC check instead.
        with pytest.raises(PacketError, match="PCRC"):
            Packet.from_bytes(raw[:-2])

    @given(payload=st.binary(max_size=256))
    def test_roundtrip_property(self, payload):
        from repro.fabric.packet import Packet

        packet = Packet(header=RouteHeader(pi=8, tc=3), payload=payload)
        decoded = Packet.from_bytes(packet.to_bytes())
        assert decoded.payload == payload
