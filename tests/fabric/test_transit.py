"""Integration tests: packets crossing links and switches end to end."""

import pytest

from repro.fabric import (
    Fabric,
    FabricParams,
    MANAGEMENT_TC,
    Packet,
    make_management_header,
)
from repro.fabric.packet import PI_DEVICE_MANAGEMENT
from repro.routing.turnpool import Hop, build_turn_pool
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def build_line(env, nswitches=2):
    """ep0 -- sw0 -- sw1 -- ... -- ep1, all on switch ports 0/1/2."""
    fabric = Fabric(env)
    fabric.add_endpoint("ep0")
    fabric.add_endpoint("ep1")
    for i in range(nswitches):
        fabric.add_switch(f"sw{i}")
    fabric.connect("ep0", 0, "sw0", 0)
    for i in range(nswitches - 1):
        fabric.connect(f"sw{i}", 1, f"sw{i+1}", 0)
    fabric.connect(f"sw{nswitches-1}", 1, "ep1", 0)
    fabric.power_up()
    return fabric


def route_ep0_to_ep1(fabric, nswitches=2):
    hops = [Hop(16, 0, 1) for _ in range(nswitches)]
    return build_turn_pool(hops)


def catcher(log, env):
    def handler(packet, port):
        log.append((env.now, packet))

    return handler


class TestUnicastTransit:
    def test_packet_reaches_destination_endpoint(self, env):
        fabric = build_line(env)
        got = []
        fabric.device("ep1").local_handler = catcher(got, env)

        pool = route_ep0_to_ep1(fabric)
        header = make_management_header(
            pool.pool, pool.bits, pi=PI_DEVICE_MANAGEMENT, tc=MANAGEMENT_TC
        )
        fabric.device("ep0").inject(Packet(header=header, payload=b"\x01" * 8))
        env.run()

        assert len(got) == 1
        when, packet = got[0]
        assert packet.header.turn_pointer == 0
        assert packet.hops == 2
        assert when > 0

    def test_transit_time_is_plausible(self, env):
        """Latency ~ tx + per-hop (routing + head) latencies, well under 1 us."""
        fabric = build_line(env)
        got = []
        fabric.device("ep1").local_handler = catcher(got, env)
        pool = route_ep0_to_ep1(fabric)
        header = make_management_header(
            pool.pool, pool.bits, pi=PI_DEVICE_MANAGEMENT
        )
        fabric.device("ep0").inject(Packet(header=header, payload=b"\x00" * 8))
        env.run()
        when, _ = got[0]
        params = fabric.params
        size = 8 + 16 + 8 + 4
        lower = params.tx_time(size)  # pure serialization
        assert lower < when < 1e-6

    def test_completion_retraces_route_backwards(self, env):
        """A reply with D=1 and the same pool reaches the requester."""
        fabric = build_line(env)
        back_log = []

        def responder(packet, port):
            reply = Packet(
                header=packet.header.reversed(), payload=b"\xAA" * 4
            )
            fabric.device("ep1").inject(reply)

        fabric.device("ep1").local_handler = responder
        fabric.device("ep0").local_handler = catcher(back_log, env)

        pool = route_ep0_to_ep1(fabric)
        header = make_management_header(
            pool.pool, pool.bits, pi=PI_DEVICE_MANAGEMENT
        )
        fabric.device("ep0").inject(Packet(header=header))
        env.run()

        assert len(back_log) == 1
        _, reply = back_log[0]
        assert reply.header.direction == 1
        assert reply.payload == b"\xAA" * 4

    def test_packet_for_intermediate_switch_terminates_there(self, env):
        fabric = build_line(env)
        got = []
        fabric.device("sw1").local_handler = catcher(got, env)
        # Route into sw1 only (one hop through sw0).
        pool = build_turn_pool([Hop(16, 0, 1)])
        header = make_management_header(
            pool.pool, pool.bits, pi=PI_DEVICE_MANAGEMENT
        )
        fabric.device("ep0").inject(Packet(header=header))
        env.run()
        assert len(got) == 1
        assert fabric.device("sw1").stats["consumed"] == 1

    def test_longer_chain(self, env):
        fabric = build_line(env, nswitches=6)
        got = []
        fabric.device("ep1").local_handler = catcher(got, env)
        pool = route_ep0_to_ep1(fabric, nswitches=6)
        header = make_management_header(
            pool.pool, pool.bits, pi=PI_DEVICE_MANAGEMENT
        )
        fabric.device("ep0").inject(Packet(header=header))
        env.run()
        assert len(got) == 1
        assert got[0][1].hops == 6


class TestPriority:
    def test_management_packet_overtakes_queued_application_data(self, env):
        """With both VCs backlogged, the management VC drains first."""
        fabric = build_line(env, nswitches=1)
        arrivals = []

        def handler(packet, port):
            arrivals.append(packet.meta["tag"])

        fabric.device("ep1").local_handler = handler
        pool = build_turn_pool([Hop(16, 0, 1)])

        ep0 = fabric.device("ep0")
        # Saturate with bulk app packets, then one management packet.
        from repro.fabric.header import RouteHeader

        for i in range(8):
            header = RouteHeader(
                pi=8, tc=0, turn_pointer=pool.bits, turn_pool=pool.pool
            )
            pkt = Packet(header=header, payload=b"\x00" * 512)
            pkt.meta["tag"] = f"app{i}"
            ep0.inject(pkt)
        mgmt_header = make_management_header(
            pool.pool, pool.bits, pi=PI_DEVICE_MANAGEMENT
        )
        mgmt = Packet(header=mgmt_header)
        mgmt.meta["tag"] = "mgmt"
        ep0.inject(mgmt)

        env.run()
        assert len(arrivals) == 9
        # The management packet cannot beat the app packet already on
        # the wire, but must precede the rest of the backlog.
        assert "mgmt" in arrivals[:2]


class TestFailures:
    def test_forward_onto_down_link_drops(self, env):
        fabric = build_line(env)
        got = []
        fabric.device("ep1").local_handler = catcher(got, env)
        fabric.fail_link("sw1", "ep1")
        pool = route_ep0_to_ep1(fabric)
        header = make_management_header(
            pool.pool, pool.bits, pi=PI_DEVICE_MANAGEMENT
        )
        fabric.device("ep0").inject(Packet(header=header))
        env.run()
        assert got == []
        assert fabric.device("sw1").stats["forward_drops"] == 1

    def test_remove_device_takes_neighbor_ports_down(self, env):
        fabric = build_line(env)
        sw0 = fabric.device("sw0")
        assert sw0.ports[1].is_up
        fabric.remove_device("sw1")
        assert not sw0.ports[1].is_up
        assert sw0.stats["port_down"] >= 1

    def test_restore_device_brings_ports_back(self, env):
        fabric = build_line(env)
        fabric.remove_device("sw1")
        fabric.restore_device("sw1")
        assert fabric.device("sw0").ports[1].is_up
        assert fabric.device("ep1").ports[0].is_up

    def test_reachability_after_removal(self, env):
        fabric = build_line(env)
        fabric.remove_device("sw1")
        reachable = fabric.reachable_devices("ep0")
        assert reachable == ["ep0", "sw0"]

    def test_remove_inactive_device_rejected(self, env):
        fabric = build_line(env)
        fabric.remove_device("sw1")
        with pytest.raises(Exception):
            fabric.remove_device("sw1")


class TestFabricContainer:
    def test_duplicate_names_rejected(self, env):
        fabric = Fabric(env)
        fabric.add_switch("sw")
        with pytest.raises(Exception):
            fabric.add_switch("sw")

    def test_self_connection_rejected(self, env):
        fabric = Fabric(env)
        fabric.add_switch("sw")
        with pytest.raises(Exception):
            fabric.connect("sw", 0, "sw", 1)

    def test_graph_reflects_topology(self, env):
        fabric = build_line(env)
        g = fabric.graph()
        assert set(g.nodes) == {"ep0", "ep1", "sw0", "sw1"}
        assert g.number_of_edges() == 3
        assert g.nodes["sw0"]["kind"] == "switch"
        edge = g.edges["ep0", "sw0"]
        assert edge["ports"]["ep0"] == 0
        assert edge["ports"]["sw0"] == 0

    def test_dsns_are_unique(self, env):
        fabric = build_line(env, nswitches=4)
        dsns = [d.dsn for d in fabric.devices.values()]
        assert len(set(dsns)) == len(dsns)

    def test_device_by_dsn(self, env):
        fabric = build_line(env)
        sw0 = fabric.device("sw0")
        assert fabric.device_by_dsn(sw0.dsn) is sw0


class TestStaggeredPowerUp:
    def test_all_devices_eventually_active(self, env):
        from repro.topology import make_mesh

        spec = make_mesh(3, 3)
        fabric = spec.build(env)
        fabric.power_up(stagger=1e-3, seed=4)
        env.run(until=2e-3)
        assert all(d.active for d in fabric.devices.values())
        assert all(link.up for link in fabric.links)

    def test_links_train_only_when_both_ends_alive(self, env):
        from repro.topology import make_mesh

        spec = make_mesh(2, 2)
        fabric = spec.build(env)
        fabric.power_up(stagger=1e-3, seed=7)
        # Mid-transient: any up link must have two active endpoints.
        env.run(until=0.4e-3)
        for link in fabric.links:
            if link.up:
                assert link.a_port.device.active
                assert link.b_port.device.active

    def test_first_device_powers_at_time_zero(self, env):
        from repro.topology import make_mesh

        spec = make_mesh(2, 2)
        fabric = spec.build(env)
        fabric.power_up(stagger=1e-3, seed=2, first="ep_0_0")
        assert fabric.device("ep_0_0").active
        assert env.now == 0.0

    def test_invalid_stagger_rejected(self, env):
        from repro.topology import make_mesh

        fabric = make_mesh(2, 2).build(env)
        with pytest.raises(Exception):
            fabric.power_up(stagger=0)
