"""Unit tests for virtual channels and credit-based flow control."""

import pytest

from repro.fabric.flow_control import CreditCounter, CreditError
from repro.fabric.header import RouteHeader
from repro.fabric.packet import Packet
from repro.fabric.vc import VCType, VirtualChannel
from repro.sim import Environment


def pkt(ts=0, oo=0, tc=0):
    return Packet(header=RouteHeader(pi=4, tc=tc, ts=ts, oo=oo))


class TestVirtualChannel:
    def test_fifo_within_ordered_queue(self):
        vc = VirtualChannel(0, VCType.BVC)
        a, b = pkt(), pkt()
        vc.push(a)
        vc.push(b)
        assert vc.pop() is a
        assert vc.pop() is b

    def test_bypassable_packet_overtakes_ordered(self):
        vc = VirtualChannel(0, VCType.BVC)
        data = pkt(ts=0)
        mgmt = pkt(ts=1)
        vc.push(data)
        vc.push(mgmt)
        assert vc.peek() is mgmt
        assert vc.pop() is mgmt
        assert vc.pop() is data

    def test_oo_bit_forbids_bypass(self):
        vc = VirtualChannel(0, VCType.BVC)
        first = pkt(ts=0)
        ordered_only = pkt(ts=1, oo=1)
        vc.push(first)
        vc.push(ordered_only)
        assert vc.pop() is first

    def test_ovc_has_no_bypass(self):
        vc = VirtualChannel(0, VCType.OVC)
        data = pkt(ts=0)
        mgmt = pkt(ts=1)
        vc.push(data)
        vc.push(mgmt)
        assert vc.pop() is data

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            VirtualChannel(0).pop()

    def test_len_and_iter(self):
        vc = VirtualChannel(0, VCType.BVC)
        a, b, c = pkt(ts=1), pkt(), pkt()
        for p in (b, a, c):
            vc.push(p)
        assert len(vc) == 3
        assert list(vc) == [a, b, c]  # bypass first


class TestCreditCounter:
    def test_instant_grant_when_available(self):
        env = Environment()
        counter = CreditCounter(env, capacity=8)
        grant = counter.consume(3)
        assert grant.triggered
        assert counter.available == 5
        assert counter.in_use == 3

    def test_blocks_until_release(self):
        env = Environment()
        counter = CreditCounter(env, capacity=4)
        counter.consume(4)
        waiting = counter.consume(2)
        assert not waiting.triggered
        counter.release(2)
        assert waiting.triggered
        assert counter.available == 0

    def test_fifo_no_starvation_of_large_packet(self):
        env = Environment()
        counter = CreditCounter(env, capacity=4)
        counter.consume(4)
        big = counter.consume(4)
        small = counter.consume(1)
        counter.release(2)
        # The big packet is first in line; the small one must wait even
        # though 2 credits would satisfy it.
        assert not big.triggered
        assert not small.triggered
        counter.release(2)
        assert big.triggered
        assert not small.triggered

    def test_oversized_request_rejected(self):
        env = Environment()
        counter = CreditCounter(env, capacity=4)
        with pytest.raises(CreditError, match="credits"):
            counter.consume(5)

    def test_over_release_rejected(self):
        env = Environment()
        counter = CreditCounter(env, capacity=4)
        with pytest.raises(CreditError, match="over-release"):
            counter.release(1)

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            CreditCounter(env, capacity=0)
        counter = CreditCounter(env, capacity=4)
        with pytest.raises(ValueError):
            counter.consume(0)
        with pytest.raises(ValueError):
            counter.release(-1)


class TestPacketSizing:
    def test_size_includes_framing_header_payload_pcrc(self):
        p = Packet(header=RouteHeader(pi=4), payload=b"\x00" * 32)
        assert p.size_bytes(framing_overhead=8, pcrc_bytes=4) == 8 + 16 + 32 + 4

    def test_empty_payload_has_no_pcrc(self):
        p = Packet(header=RouteHeader(pi=4))
        assert p.size_bytes(framing_overhead=8, pcrc_bytes=4) == 8 + 16

    def test_credit_units_round_up(self):
        p = Packet(header=RouteHeader(pi=4), payload=b"\x00" * 100)
        # 8 + 16 + 100 + 4 = 128 bytes -> exactly 2 units of 64.
        assert p.credit_units(credit_unit=64) == 2
        p2 = Packet(header=RouteHeader(pi=4), payload=b"\x00" * 101)
        assert p2.credit_units(credit_unit=64) == 3

    def test_packet_ids_unique(self):
        a, b = pkt(), pkt()
        assert a.pkt_id != b.pkt_id
