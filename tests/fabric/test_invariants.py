"""Property tests on fabric-wide invariants under random workloads."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.runner import build_simulation, run_until_ready
from repro.fabric import Packet, PacketTracer
from repro.fabric.header import RouteHeader
from repro.fabric.packet import PI_APPLICATION, PI_DEVICE_MANAGEMENT
from repro.manager import PARALLEL
from repro.routing.paths import fabric_endpoint_routes
from repro.topology import make_irregular, make_mesh

COMMON = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    seed=st.integers(0, 10_000),
    bursts=st.integers(1, 40),
    payload=st.integers(0, 512),
)
def test_credits_conserved_after_random_traffic(seed, bursts, payload):
    """After the fabric drains, every credit counter is full and every
    input buffer empty — no matter the traffic pattern."""
    import random

    rng = random.Random(seed)
    setup = build_simulation(make_mesh(2, 2), auto_start=False)
    routes = {
        ep.name: fabric_endpoint_routes(setup.fabric, ep.name)
        for ep in setup.fabric.endpoints()
    }
    sources = sorted(routes)
    for _ in range(bursts):
        src = rng.choice(sources)
        dst = rng.choice(sorted(routes[src]))
        pool, out_port = routes[src][dst]
        header = RouteHeader(pi=PI_APPLICATION, tc=rng.randrange(8),
                             turn_pointer=pool.bits, turn_pool=pool.pool)
        setup.fabric.device(src).inject(
            Packet(header=header, payload=bytes(payload)), out_port
        )
    setup.env.run()

    for device in setup.fabric.devices.values():
        for port in device.ports:
            for counter in port.credits:
                assert counter.available == counter.capacity, port.name
            assert all(u == 0 for u in port._rx_in_use), port.name
            assert port.queued_packets() == 0, port.name


@COMMON
@given(
    num_switches=st.integers(2, 7),
    extra_links=st.integers(0, 4),
    seed=st.integers(0, 1_000),
)
def test_traced_paths_match_database_routes(num_switches, extra_links, seed):
    """The path every discovery packet actually took (per the tracer)
    starts at the FM and matches hop counts implied by its route."""
    spec = make_irregular(num_switches, extra_links=extra_links, seed=seed)
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    tracer = PacketTracer(pi_filter={PI_DEVICE_MANAGEMENT},
                          limit=200_000).attach(setup.fabric)
    setup.fm.start_discovery()
    run_until_ready(setup)

    fm_name = setup.fm.endpoint.name
    injected = {
        e.packet_id for e in tracer.events
        if e.kind == "inject" and e.device == fm_name
    }
    delivered = 0
    for packet_id in injected:
        path = tracer.path_of(packet_id)
        assert path[0] == fm_name, path
        # No device appears twice in a forward source route.
        assert len(path) == len(set(path)), path
        if len(path) > 1:
            delivered += 1
    assert delivered > 0


@COMMON
@given(
    num_switches=st.integers(2, 7),
    seed=st.integers(0, 1_000),
)
def test_no_packet_outlives_the_run(num_switches, seed):
    """When the simulation drains, every injected management packet
    was delivered or explicitly dropped — none vanish silently."""
    spec = make_irregular(num_switches, extra_links=1, seed=seed)
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    tracer = PacketTracer(pi_filter={PI_DEVICE_MANAGEMENT},
                          limit=500_000).attach(setup.fabric)
    setup.fm.start_discovery()
    run_until_ready(setup)
    setup.env.run()

    counts = tracer.counts()
    # Every wire injection ends in a delivery or a drop.  (Loopback
    # reads never touch the wire and do not appear in the trace.)
    assert counts["inject"] + counts["forward"] >= counts["rx"]
    assert counts["deliver"] + counts["drop"] >= counts["inject"]
    assert counts["drop"] == 0  # healthy fabric loses nothing
