#!/usr/bin/env python3
"""Election and failover: the fabric's availability story.

1. The fabric powers up and runs the distributed FM election: every
   FM-capable endpoint floods its candidacy; priority (then DSN)
   decides.  The winner becomes primary, the runner-up secondary.
2. The primary discovers the fabric; the secondary heartbeats it.
3. The primary's endpoint dies.  The secondary detects the missed
   heartbeats, promotes itself, and rediscovers the fabric from its
   own vantage point.

Run:  python examples/fm_failover.py
"""

from repro import (
    Election,
    Environment,
    FabricManager,
    ManagementEntity,
    StandbyManager,
    make_mesh,
    run_until_ready,
)
from repro.routing.paths import fabric_route


def main() -> None:
    env = Environment()
    spec = make_mesh(3, 3)
    fabric = spec.build(env)

    # Give two endpoints elevated election priority.
    fabric.device("ep_0_0").fm_priority = 10
    fabric.device("ep_2_2").fm_priority = 5
    entities = {n: ManagementEntity(d) for n, d in fabric.devices.items()}
    fabric.power_up()

    # --- 1. election ------------------------------------------------------
    election = Election(entities, seed=42)
    result = env.run(until=election.run())
    primary = fabric.device_by_dsn(result.primary_dsn)
    secondary = fabric.device_by_dsn(result.secondary_dsn)
    print(f"Election (consensus={result.consensus}):")
    print(f"  primary   = {primary.name} (priority {primary.fm_priority})")
    print(f"  secondary = {secondary.name} (priority {secondary.fm_priority})")

    # --- 2. primary discovers, secondary stands by -------------------------
    fm = FabricManager(primary, entities[primary.name], auto_start=False)
    fm.start_discovery()
    env.run(until=fm.ready_event)
    print(f"\nPrimary discovery: {fm.last_stats().discovery_time * 1e3:.3f} "
          f"ms, {len(fm.database)} devices")

    standby_fm = FabricManager(
        secondary, entities[secondary.name],
        auto_start=False, request_timeout=0.5e-3, max_retries=0,
    )
    standby = StandbyManager(
        standby_fm,
        primary_route=fabric_route(fabric, secondary.name, primary.name),
        heartbeat_interval=2e-3, miss_threshold=3,
    )
    standby.start()
    env.run(until=env.now + 20e-3)
    print(f"Standby after 20 ms: {standby.heartbeats_answered} heartbeats "
          f"answered, {standby.misses} misses")

    # --- 3. primary dies -----------------------------------------------------
    print(f"\nKilling the primary ({primary.name})...")
    fabric.remove_device(primary.name)
    report = env.run(until=standby.takeover_event)
    print(f"Takeover: detected after {report.missed_heartbeats} missed "
          f"heartbeats; rediscovery took "
          f"{report.recovery_time * 1e3:.3f} ms")
    print(f"New manager {standby.fm.endpoint.name} knows "
          f"{len(standby.fm.database)} devices "
          f"(old primary and its endpoint are gone)")


if __name__ == "__main__":
    main()
