#!/usr/bin/env python3
"""Collaborative (distributed) discovery — the paper's future work.

Compares a single Parallel FM against two collaborating FMs on an
8x8 torus.  The collaborators race to claim devices (first PI-4 claim
write wins, atomically, thanks to each device's serial management
processing), explore only their own regions, and the helper streams
its region to the primary afterwards.

Run:  python examples/distributed_discovery.py
"""

from repro import (
    CollaborativeDiscovery,
    FabricManager,
    PARALLEL,
    build_simulation,
    database_matches_fabric,
    make_torus,
    run_until_ready,
)
from repro.routing.paths import fabric_route


def main() -> None:
    spec = make_torus(8, 8)
    print(f"Topology: {spec.name} ({spec.total_devices} devices)\n")

    # --- single-FM baseline ------------------------------------------------
    solo = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    solo.fm.start_discovery()
    solo_stats = run_until_ready(solo)
    print(f"Single Parallel FM : {solo_stats.discovery_time * 1e3:8.3f} ms "
          f"({solo_stats.total_packets} packets)")

    # --- two collaborating FMs --------------------------------------------
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    helper_host = "ep_4_4"  # opposite corner region
    helper = FabricManager(
        setup.fabric.device(helper_host), setup.entities[helper_host],
        algorithm=PARALLEL, auto_start=False,
    )
    route_to_primary = fabric_route(setup.fabric, helper_host, spec.fm_host)
    collab = CollaborativeDiscovery(
        setup.fm, [(helper, route_to_primary)], generation=1,
    )
    stats = setup.env.run(until=collab.run())

    print(f"Two FMs            : {stats.total_time * 1e3:8.3f} ms "
          f"({stats.total_packets} packets)")
    print(f"  exploration      : " + ", ".join(
        f"{name}={t * 1e3:.3f} ms"
        for name, t in stats.exploration_times.items()
    ))
    print(f"  regions          : " + ", ".join(
        f"{name}={n} devices" for name, n in stats.region_sizes.items()
    ))
    print(f"  merge            : {stats.merge_writes} record transfers in "
          f"{stats.merge_duration * 1e3:.3f} ms")

    ok = database_matches_fabric(setup)
    print(f"  merged database  : "
          f"{'matches ground truth' if ok else 'INCONSISTENT'}")
    print(f"\nSpeedup: {solo_stats.discovery_time / stats.total_time:.2f}x "
          f"(the FM is the discovery bottleneck, so a second FM nearly "
          f"halves the exploration phase)")


if __name__ == "__main__":
    main()
