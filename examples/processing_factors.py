#!/usr/bin/env python3
"""Processing-factor study (a small-scale Fig. 8).

Sweeps the FM and device processing-speed factors on a 4x4 mesh and
prints the discovery times, demonstrating the paper's conclusion:
"for faster FM and slower fabric devices, the difference between the
Parallel discovery algorithm and the serial ones increases".

Run:  python examples/processing_factors.py
"""

from repro import make_mesh
from repro.experiments.report import render_series
from repro.experiments.sweep import sweep_device_factor, sweep_fm_factor


def main() -> None:
    spec = make_mesh(4, 4)
    print(f"Topology: {spec.name} (all devices active)\n")

    fm_series = sweep_fm_factor(spec, factors=(0.25, 0.5, 1.0, 2.0, 4.0))
    print(render_series(
        "Discovery time vs FM processing factor (device factor = 1)",
        "fm_factor", "seconds", fm_series,
    ))

    dev_series = sweep_device_factor(spec, factors=(0.1, 0.2, 0.5, 1.0, 2.0))
    print()
    print(render_series(
        "Discovery time vs device processing factor (FM factor = 1)",
        "device_factor", "seconds", dev_series,
    ))

    # The paper's corner case: fast FM, slow devices.
    def gap(series, factor):
        by_algo = {name: dict(points) for name, points in series.items()}
        return (by_algo["serial_packet"][factor]
                / by_algo["parallel"][factor])

    print("\nSerial Packet / Parallel time ratio:")
    print(f"  baseline (factor 1)        : {gap(fm_series, 1.0):.2f}x")
    print(f"  FM 4x faster               : {gap(fm_series, 4.0):.2f}x")
    print(f"  devices 5x slower          : {gap(dev_series, 0.2):.2f}x")
    print("\n(Fig. 8: the FM factor scales everyone; the device factor "
          "only hurts the serial algorithms.)")


if __name__ == "__main__":
    main()
