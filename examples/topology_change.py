#!/usr/bin/env python3
"""Hot topology changes: PI-5 detection and change assimilation.

Reproduces the paper's experimental protocol end to end on a 4x4
torus: the fabric powers up, the FM runs its initial discovery and
programs every device's event route; then a switch is hot-removed.
Its neighbours detect the dead links, send PI-5 notifications along
their programmed routes, and the FM rediscovers the surviving fabric.
Afterwards the switch is hot-added back and assimilated again.

Run:  python examples/topology_change.py
"""

from repro import (
    PARALLEL,
    build_simulation,
    database_matches_fabric,
    make_torus,
    run_until_discovery_count,
    run_until_ready,
)


def report(label, stats, setup):
    reachable = len(setup.fabric.reachable_devices(setup.fm.endpoint.name))
    ok = "consistent" if database_matches_fabric(setup) else "WRONG"
    print(f"  {label:22s} trigger={stats.trigger:8s} "
          f"time={stats.discovery_time * 1e3:7.3f} ms  "
          f"devices={stats.devices_found:3d}/{reachable:3d}  "
          f"packets={stats.total_packets:4d}  db={ok}")


def main() -> None:
    spec = make_torus(4, 4)
    setup = build_simulation(spec, algorithm=PARALLEL)
    print(f"Topology: {spec.name}; FM hosted on {spec.fm_host}")

    # Power-up triggered the initial discovery automatically
    # (auto_start=True): wait until event routes are programmed.
    initial = run_until_ready(setup)
    print("\nTransient period (initial discovery):")
    report("initial discovery", initial, setup)

    victim = "sw_2_2"
    print(f"\nHot-removing {victim} (its endpoint ep_2_2 is stranded):")
    t_change = setup.env.now
    setup.fabric.remove_device(victim)
    removal = run_until_discovery_count(setup, 2)
    setup.env.run(until=setup.fm.ready_event)
    report("rediscovery", removal, setup)
    pi5 = setup.fm.counters["pi5_received"]
    print(f"  change->rediscovery started after "
          f"{(removal.started_at - t_change) * 1e6:.2f} us "
          f"({pi5} PI-5 notifications received so far)")

    print(f"\nHot-adding {victim} back:")
    setup.fabric.restore_device(victim)
    addition = run_until_discovery_count(setup, 3)
    setup.env.run(until=setup.fm.ready_event)
    report("rediscovery", addition, setup)

    print("\nFM discovery history:")
    for i, stats in enumerate(setup.fm.history):
        print(f"  #{i + 1}: {stats.trigger:8s} "
              f"{stats.discovery_time * 1e3:7.3f} ms, "
              f"{stats.devices_found} devices")


if __name__ == "__main__":
    main()
