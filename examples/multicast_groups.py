#!/usr/bin/env python3
"""Multicast group management (paper section 2's management task list).

After discovery the FM computes a distribution tree for a group of
endpoints and programs the on-tree switches' multicast forwarding
tables through PI-4.  Any member then reaches the whole group with a
single packet whose turn-pool field carries the group id — switches
replicate in hardware, endpoints off the tree never see a copy.

Run:  python examples/multicast_groups.py
"""

from repro import PARALLEL, build_simulation, make_torus, run_until_ready
from repro.fabric import Packet
from repro.fabric.header import RouteHeader
from repro.fabric.packet import PI_MULTICAST
from repro.manager.multicast import MulticastGroupManager

GROUP_ID = 0x0042


def main() -> None:
    spec = make_torus(4, 4)
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    setup.fm.start_discovery()
    run_until_ready(setup)
    print(f"{spec.name} discovered "
          f"({setup.fm.last_stats().devices_found} devices)\n")

    members = ["ep_0_0", "ep_0_3", "ep_3_0", "ep_3_3", "ep_2_2"]
    member_dsns = [setup.fabric.device(n).dsn for n in members]

    manager = MulticastGroupManager(setup.fm)
    stats = setup.env.run(
        until=manager.create_group(GROUP_ID, member_dsns)
    )
    print(f"Group {GROUP_ID:#06x} with {stats.members} members:")
    print(f"  programmed {stats.switches_programmed} switches "
          f"({stats.table_entries} table entries, "
          f"{stats.writes_sent} PI-4 writes) in "
          f"{stats.duration * 1e6:.1f} us\n")

    # Count deliveries at every endpoint.
    counts = {name: 0 for name in setup.fabric.devices}
    for name, entity in setup.entities.items():
        entity.flood_handler = (
            lambda packet, port, _n=name: counts.__setitem__(
                _n, counts[_n] + 1
            )
        )

    source = members[0]
    header = RouteHeader(pi=PI_MULTICAST, tc=7, ts=1,
                         turn_pointer=0, turn_pool=GROUP_ID)
    setup.fabric.device(source).inject(
        Packet(header=header, payload=b"group hello")
    )
    setup.env.run(until=setup.env.now + 1e-4)

    print(f"One packet injected at {source}:")
    for name in sorted(n for n in counts if n.startswith("ep")):
        role = "member" if name in members else "      "
        mark = "<-- received" if counts[name] else ""
        print(f"  {role} {name}: {counts[name]} {mark}")

    delivered = [n for n in members[1:] if counts[n] == 1]
    strangers = [n for n, c in counts.items()
                 if c and n.startswith("ep") and n not in members]
    assert len(delivered) == len(members) - 1, "every member exactly once"
    assert not strangers, "non-members must receive nothing"
    print("\nEvery member received exactly one copy; nobody else did.")


if __name__ == "__main__":
    main()
