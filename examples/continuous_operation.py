#!/usr/bin/env python3
"""Continuous operation: a fabric under sustained topology churn.

The paper measures one change per run; this example lets a seeded
fault injector hammer a 4x4 torus with fifteen random switch
removals/restorations and link flaps while the FM keeps assimilating.
A packet tracer (management packets only) shows the PI-5 traffic of
the final change, and the run ends by checking the FM database still
matches the surviving ground truth exactly.

Run:  python examples/continuous_operation.py
"""

from repro import PARALLEL, build_simulation, make_torus, run_until_ready
from repro import database_matches_fabric
from repro.fabric import PacketTracer
from repro.fabric.packet import PI_EVENT
from repro.workloads.faults import FaultInjector


def main() -> None:
    spec = make_torus(4, 4)
    setup = build_simulation(spec, algorithm=PARALLEL)
    initial = run_until_ready(setup)
    print(f"{spec.name} up: {initial.devices_found} devices in "
          f"{initial.discovery_time * 1e3:.2f} ms\n")

    protect = setup.fm.endpoint.ports[0].neighbor().device.name
    injector = FaultInjector(setup.fabric, mean_interval=30e-3,
                             protect={protect}, seed=1234)
    tracer = PacketTracer(pi_filter={PI_EVENT}, limit=2000)
    tracer.attach(setup.fabric)

    done = injector.run(faults=15)
    setup.env.run(until=done)
    # Let the last assimilation(s) drain.
    for _ in range(40):
        if not setup.fm.is_discovering:
            break
        setup.env.run(until=setup.env.now + 20e-3)
    setup.env.run(until=setup.env.now + 50e-3)

    print("Injected faults:")
    for event in injector.log:
        print(f"  {event.time * 1e3:8.2f} ms  {event.kind:15s} "
              f"{event.target}")

    history = setup.fm.history
    changes = [s for s in history if s.trigger == "change"]
    print(f"\nFM ran {len(history)} discoveries "
          f"({len(changes)} change assimilations):")
    mean = sum(s.discovery_time for s in changes) / len(changes)
    print(f"  mean assimilation time : {mean * 1e3:.3f} ms")
    print(f"  PI-5 events received   : "
          f"{setup.fm.counters['pi5_received']}")
    print(f"  ignored (mid-discovery): "
          f"{setup.fm.counters['events_during_discovery']}")

    print("\nLast PI-5 notifications on the wire:")
    deliveries = [e for e in tracer.events if e.kind == "deliver"]
    for event in deliveries[-4:]:
        print(f"  {event.render()}")

    ok = database_matches_fabric(setup)
    print(f"\nFinal database vs ground truth: "
          f"{'MATCH' if ok else 'MISMATCH'}")
    assert ok


if __name__ == "__main__":
    main()
