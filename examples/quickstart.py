#!/usr/bin/env python3
"""Quickstart: discover an ASI fabric with all three algorithms.

Builds the paper's 3x3 mesh (9 sixteen-port switches, one endpoint
each), runs the Serial Packet, Serial Device, and Parallel discovery
implementations, and prints what the paper's Figs. 6/7 measure: the
discovery time, the management traffic, and the per-packet pipeline
behaviour.

Run:  python examples/quickstart.py
"""

from repro import (
    ALGORITHMS,
    build_simulation,
    database_matches_fabric,
    make_mesh,
    run_until_ready,
)
from repro.experiments.report import render_table


def main() -> None:
    spec = make_mesh(3, 3)
    print(f"Topology: {spec.name} — {spec.num_switches} switches, "
          f"{spec.num_endpoints} endpoints\n")

    rows = []
    for algorithm in ALGORITHMS:
        # Each run gets a fresh simulated fabric with a management
        # entity per device and a fabric manager on endpoint (0, 0).
        setup = build_simulation(spec, algorithm=algorithm,
                                 auto_start=False)
        setup.fm.start_discovery()
        stats = run_until_ready(setup)

        assert database_matches_fabric(setup), "discovery must be exact"
        rows.append([
            algorithm,
            stats.discovery_time,
            stats.requests_sent,
            stats.total_bytes,
            stats.duplicates_detected,
            setup.fm.mean_processing_time(),
        ])

    print(render_table(
        ["algorithm", "discovery time (s)", "requests", "bytes",
         "duplicate hits", "mean T_FM (s)"],
        rows,
    ))

    serial, parallel = rows[0][1], rows[2][1]
    print(f"\nParallel speedup over Serial Packet: "
          f"{serial / parallel:.2f}x")
    print("(The paper's headline: Parallel < Serial Device < Serial "
          "Packet, with identical packet counts.)")


if __name__ == "__main__":
    main()
