#!/usr/bin/env python3
"""Custom topologies, background traffic, and partial assimilation.

Shows the library as a downstream user would drive it:

* define an irregular topology by hand with :class:`TopologySpec`;
* run discovery while the fabric carries application traffic (the
  management traffic class preempts it, per the specification);
* use the partial-assimilation manager so a link failure costs a
  handful of packets instead of a full rediscovery.

Run:  python examples/custom_topology.py
"""

from repro import (
    Environment,
    ManagementEntity,
    PartialAssimilationManager,
    TopologySpec,
    TrafficGenerator,
    run_until_discovery_count,
)


def build_spec() -> TopologySpec:
    """A small dual-star with a redundant cross link.

          ep_a   ep_b          ep_c   ep_d
            \\     |              |     /
             [ core0 ]========[ core1 ]     (two parallel links)
                  \\              /
                   ---[ edge ]---
                         |
                       ep_e
    """
    spec = TopologySpec(
        name="dual-star",
        switches=[("core0", 16), ("core1", 16), ("edge", 8)],
        endpoints=["ep_a", "ep_b", "ep_c", "ep_d", "ep_e"],
        links=[
            ("ep_a", 0, "core0", 0),
            ("ep_b", 0, "core0", 1),
            ("ep_c", 0, "core1", 0),
            ("ep_d", 0, "core1", 1),
            ("ep_e", 0, "edge", 0),
            ("core0", 8, "core1", 8),   # primary core link
            ("core0", 9, "core1", 9),   # redundant core link
            ("core0", 10, "edge", 1),
            ("core1", 10, "edge", 2),
        ],
        fm_host="ep_a",
    )
    spec.validate()
    return spec


def main() -> None:
    env = Environment()
    spec = build_spec()
    fabric = spec.build(env)
    entities = {n: ManagementEntity(d) for n, d in fabric.devices.items()}
    fm = PartialAssimilationManager(
        fabric.device(spec.fm_host), entities[spec.fm_host],
        auto_start=False,
    )
    fabric.power_up()

    # Application traffic at 40% load on the low-priority VC.
    traffic = TrafficGenerator(fabric, load=0.4, seed=7)
    traffic.attach_sinks(entities)
    traffic.start()

    fm.start_discovery()
    env.run(until=fm.ready_event)
    initial = fm.last_stats()
    print(f"{spec.name}: discovered {initial.devices_found} devices in "
          f"{initial.discovery_time * 1e3:.3f} ms under "
          f"{traffic.load:.0%} application load")
    print(f"  app packets so far: {traffic.counters['packets_injected']} "
          f"injected / {traffic.counters['packets_delivered']} delivered")

    # Fail the primary core link; the redundant one keeps the fabric
    # connected, so partial assimilation just drops one edge.
    print("\nFailing the primary core0<->core1 link...")
    link = [l for l in fabric.links if "core0.p8" in l.name][0]
    link.take_down()
    partial = run_until_discovery_count(_Setup(env, fm), 2)
    print(f"  assimilated as {partial.algorithm!r}: "
          f"{partial.requests_sent} requests, "
          f"{partial.discovery_time * 1e3:.3f} ms "
          f"(vs {initial.requests_sent} for a full discovery)")
    print(f"  database still holds {len(fm.database)} devices "
          f"(nothing was unreachable)")

    traffic.stop()


class _Setup:
    """Tiny adapter matching run_until_discovery_count's interface."""

    def __init__(self, env, fm):
        self.env = env
        self.fm = fm


if __name__ == "__main__":
    main()
